"""Command-line interface."""

import json

import pytest

from repro.cli import (
    main,
    make_backend,
    parse_model,
    parse_options,
    parse_precision,
)
from repro.common.errors import ConfigurationError
from repro.models.precision import Precision


class TestParsers:
    def test_parse_model_preset(self):
        assert parse_model("gpt2-small").hidden_size == 768
        assert parse_model("llama2-7b").n_layers == 32

    def test_parse_model_layer_override(self):
        assert parse_model("gpt2-small:24").n_layers == 24

    def test_parse_model_probe(self):
        probe = parse_model("probe:512x6")
        assert probe.hidden_size == 512
        assert probe.n_layers == 6
        assert probe.vocab_size == 2048

    def test_parse_model_errors(self):
        with pytest.raises(ConfigurationError):
            parse_model("bert-base")
        with pytest.raises(ConfigurationError):
            parse_model("probe:banana")

    def test_parse_precision(self):
        assert parse_precision("bf16").compute is Precision.BF16
        assert parse_precision("mixed-fp16").is_mixed
        assert parse_precision("matmul-bf16").needs_activation_casts
        assert parse_precision("full").compute is Precision.FP32

    def test_parse_options(self):
        assert parse_options(["mode=O1", "tp=2"]) == {"mode": "O1",
                                                      "tp": 2}
        with pytest.raises(ConfigurationError):
            parse_options(["oops"])

    def test_make_backend_names(self):
        for name in ("cerebras", "sambanova", "graphcore",
                     "graphcore-pod", "gpu"):
            assert make_backend(name).system is not None
        with pytest.raises(ConfigurationError):
            make_backend("tpu")


class TestCommands:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "cerebras" in out and "sambanova" in out

    def test_tier1_text_and_json(self, capsys, tmp_path):
        out_file = tmp_path / "tier1.json"
        code = main(["tier1", "--platform", "cerebras",
                     "--model", "gpt2-small:4", "--batch", "16",
                     "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tier-1 profile" in out
        payload = json.loads(out_file.read_text())
        assert payload["platform"] == "CS-2"

    def test_sweep_layers_records_fail(self, capsys):
        code = main(["sweep-layers", "--platform", "cerebras",
                     "--model", "gpt2-small", "--batch", "32",
                     "--layers", "4", "90"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fail" in out

    def test_batch_sweep(self, capsys):
        code = main(["batch-sweep", "--platform", "sambanova",
                     "--model", "gpt2-small:4", "--precision", "bf16",
                     "--batches", "4", "8", "--option", "mode=O1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scaling exponent" in out

    def test_scaling(self, capsys):
        code = main(["scaling", "--platform", "sambanova",
                     "--model", "gpt2-small:4", "--precision", "bf16",
                     "--option", "mode=O1",
                     "--configs", "tp=1", "tp=2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tp=2" in out

    def test_graphcore_options(self, capsys):
        code = main(["tier1", "--platform", "graphcore",
                     "--model", "probe:768x4", "--batch", "16",
                     "--option", "n_ipus=2"])
        assert code == 0

    def test_config_error_exit_code(self, capsys):
        code = main(["tier1", "--platform", "cerebras",
                     "--model", "nonexistent-model"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_grid_runs(self, capsys):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "4", "--batches", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Grid sweep" in out
        assert out.count("ok") >= 2

    def test_grid_resume_skips_finished(self, capsys, tmp_path):
        journal = tmp_path / "grid.jsonl"
        args = ["grid", "--platform", "cerebras",
                "--model", "probe:256x2", "--seq-len", "256",
                "--layers", "2", "4", "--batches", "8",
                "--resume", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("yes") >= 2  # both cells replayed from journal

    def test_grid_fault_injection_with_retries(self, capsys):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "4", "6", "--batches", "8",
                     "--inject-faults", "0.4", "--fault-seed", "7",
                     "--max-retries", "3"])
        assert code == 0

    def test_bad_fault_rate_rejected(self, capsys):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2",
                     "--layers", "2", "--batches", "8",
                     "--inject-faults", "1.5"])
        assert code == 2

    @pytest.mark.parametrize("flag, value", [
        ("--heartbeat-interval", "0"),
        ("--heartbeat-interval", "-2.5"),
        ("--quarantine-after", "0"),
        ("--quarantine-after", "-1"),
        ("--max-pool-rebuilds", "-1"),
    ])
    def test_bad_supervision_flags_rejected(self, capsys, flag, value):
        # Mirrors the --cell-timeout check: fail fast with exit code 2
        # before any cell runs.
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2",
                     "--layers", "2", "--batches", "8",
                     flag, value])
        assert code == 2
        assert flag in capsys.readouterr().err

    def test_supervision_flags_reach_policy_json(self, capsys, tmp_path):
        out_file = tmp_path / "campaign.json"
        code = main(["campaign", "--platforms", "cerebras",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "--batches", "8",
                     "--heartbeat-interval", "1.5",
                     "--quarantine-after", "3",
                     "--max-pool-rebuilds", "7",
                     "--json", str(out_file)])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["policy"]["heartbeat_interval"] == 1.5
        assert payload["policy"]["quarantine_after"] == 3
        assert payload["policy"]["max_pool_rebuilds"] == 7
        # Thread dispatch runs unsupervised.
        assert payload["supervision"] is None

    def test_batch_sweep_journal(self, tmp_path, capsys):
        journal = tmp_path / "bs.jsonl"
        code = main(["batch-sweep", "--platform", "sambanova",
                     "--model", "gpt2-small:4", "--precision", "bf16",
                     "--batches", "4", "8", "--option", "mode=O1",
                     "--journal", str(journal)])
        assert code == 0
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == 2

    def test_grid_max_workers_keeps_spec_order(self, capsys):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "4", "--batches", "8", "16",
                     "--max-workers", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.index("L2/b8") < out.index("L2/b16") \
            < out.index("L4/b8") < out.index("L4/b16")

    def test_bare_resume_without_journal_rejected(self, capsys):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2",
                     "--layers", "2", "--batches", "8", "--resume"])
        assert code == 2
        assert "journal" in capsys.readouterr().err

    def test_journal_dir_conflicts_with_journal_file(self, capsys,
                                                     tmp_path):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2",
                     "--layers", "2", "--batches", "8",
                     "--journal", str(tmp_path / "j.jsonl"),
                     "--journal-dir", str(tmp_path / "dir")])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err


class TestCampaignCommand:
    def test_campaign_runs_multiple_lanes(self, capsys, tmp_path):
        out_file = tmp_path / "campaign.json"
        code = main(["campaign", "--platforms", "cerebras", "gpu",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "4", "--batches", "8",
                     "--max-workers", "4",
                     "--journal-dir", str(tmp_path / "journal"),
                     "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Grid on cerebras" in out
        assert "Grid on gpu" in out
        assert "Infrastructure health" in out
        payload = json.loads(out_file.read_text())
        assert payload["total_cells"] == 4
        assert payload["policy"]["max_workers"] == 4
        assert [lane["label"] for lane in payload["lanes"]] == \
            ["cerebras", "gpu"]
        shards = list((tmp_path / "journal").glob("shard-*.jsonl"))
        assert 1 <= len(shards) <= 4

    def test_campaign_schedule_flag(self, capsys, tmp_path):
        out_file = tmp_path / "campaign.json"
        code = main(["campaign", "--platforms", "cerebras", "gpu",
                     "--model", "probe:256x2", "--seq-len", "256",
                     "--layers", "2", "4", "--batches", "8",
                     "--schedule", "longest-first",
                     "--predictor", "analytic",
                     "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scheduling" in out
        assert "longest-first" in out
        # Spec order survives cost-ordered dispatch.
        assert out.index("L2/b8") < out.index("L4/b8")
        payload = json.loads(out_file.read_text())
        assert payload["policy"]["schedule"] == "longest-first"
        assert payload["policy"]["predictor"] == "analytic"
        assert payload["scheduling"]["cells"] == 4
        assert payload["scheduling"]["predicted_seconds"] > 0

    def test_bad_schedule_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["grid", "--platform", "cerebras",
                  "--model", "probe:256x2",
                  "--layers", "2", "--batches", "8",
                  "--schedule", "random"])
        assert "--schedule" in capsys.readouterr().err

    def test_campaign_resume_from_journal_dir(self, capsys, tmp_path):
        args = ["campaign", "--platforms", "cerebras",
                "--model", "probe:256x2", "--seq-len", "256",
                "--layers", "2", "--batches", "8",
                "--journal-dir", str(tmp_path / "j"), "--resume"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 of 1 cells executed (1 resumed" in out


class TestObservabilityFlags:
    def grid_args(self, tmp_path, *extra):
        return ["grid", "--platform", "cerebras",
                "--model", "probe:256x2", "--seq-len", "256",
                "--layers", "2", "4", "--batches", "8",
                "--journal-dir", str(tmp_path / "journal"), *extra]

    def test_bare_trace_writes_beside_journal_shards(self, capsys,
                                                     tmp_path):
        assert main(self.grid_args(tmp_path, "--trace")) == 0
        shards = list((tmp_path / "journal").glob("trace-*.jsonl"))
        assert shards

    def test_trace_subcommand_summarizes(self, capsys, tmp_path):
        main(self.grid_args(tmp_path, "--trace"))
        capsys.readouterr()
        assert main(["trace", str(tmp_path / "journal")]) == 0
        out = capsys.readouterr().out
        assert "Trace:" in out
        assert "compile" in out and "dispatch" in out

    def test_trace_subcommand_merged_and_chrome(self, capsys, tmp_path):
        main(self.grid_args(tmp_path, "--trace"))
        capsys.readouterr()
        chrome = tmp_path / "trace.json"
        assert main(["trace", str(tmp_path / "journal"),
                     "--merged", "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(line) for line in out.splitlines()
                 if line.startswith("{")]
        assert all(set(rec) == {"key", "name", "phase", "status",
                                "attempt"} for rec in lines)
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_trace_subcommand_empty_directory(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path)]) == 1
        assert "no trace events" in capsys.readouterr().err

    def test_ledger_flag_persists_and_reaches_policy_json(self, capsys,
                                                          tmp_path):
        ledger = tmp_path / "ledger.json"
        out_file = tmp_path / "out.json"
        assert main(self.grid_args(tmp_path, "--ledger", str(ledger),
                                   "--json", str(out_file))) == 0
        assert ledger.exists()
        payload = json.loads(out_file.read_text())
        # run_grid JSON is a cell list; the policy lands in campaign
        # output — here we just need the ledger file written.
        assert payload

    def test_trace_without_journal_dir_rejected(self, capsys, tmp_path):
        code = main(["grid", "--platform", "cerebras",
                     "--model", "probe:256x2",
                     "--layers", "2", "--batches", "8", "--trace"])
        assert code == 2
        assert "ShardedJournal" in capsys.readouterr().err


class TestCacheCommand:
    @staticmethod
    def _populated(tmp_path):
        from repro.cache import CompileCache, canonical_fingerprint
        cache = CompileCache(tmp_path / "cc")
        cache.store(canonical_fingerprint({"cell": 1}), {"compiled": 1})
        cache.store(canonical_fingerprint({"cell": 2}), {"compiled": 2})
        cache.stage_store("graph", canonical_fingerprint({"s": 1}), 11)
        cache.stage_store("report", canonical_fingerprint({"s": 2}), 22)
        return cache

    def test_stats_table_breaks_down_tiers(self, capsys, tmp_path):
        self._populated(tmp_path)
        assert main(["cache", "stats", str(tmp_path / "cc")]) == 0
        out = capsys.readouterr().out
        cells = [[col.strip() for col in line.split("|")]
                 for line in out.splitlines() if "|" in line]
        rows = {row[0]: row[1] for row in cells
                if row[0] in ("cell", "stage:graph", "stage:report",
                              "total")}
        assert rows == {"cell": "2", "stage:graph": "1",
                        "stage:report": "1", "total": "4"}

    def test_stats_accepts_a_fresh_empty_directory(self, capsys,
                                                   tmp_path):
        empty = tmp_path / "cc"
        empty.mkdir()
        assert main(["cache", "stats", str(empty)]) == 0
        assert "total" in capsys.readouterr().out

    def test_stats_tolerates_the_embedded_ledger(self, capsys,
                                                 tmp_path):
        self._populated(tmp_path)
        (tmp_path / "cc" / "ledger.json").write_text("{}")
        assert main(["cache", "stats", str(tmp_path / "cc")]) == 0

    def test_non_cache_directory_rejected(self, capsys, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        assert main(["cache", "stats", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "not a cache directory" in err
        assert "notes.txt" in err

    def test_missing_directory_rejected(self, capsys, tmp_path):
        assert main(["cache", "stats", str(tmp_path / "absent")]) == 2
        assert "not a cache directory" in capsys.readouterr().err
