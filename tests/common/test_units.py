"""Unit-formatting helpers."""

import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    fmt_bytes,
    fmt_count,
    fmt_flops,
    fmt_rate,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == KB * 1024
        assert GB == MB * 1024
        assert TB == GB * 1024
        assert PB == TB * 1024


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert fmt_bytes(48 * KB) == "48.00 KB"

    def test_gigabytes(self):
        assert fmt_bytes(40 * GB) == "40.00 GB"

    def test_petabytes(self):
        assert fmt_bytes(2.5 * PB) == "2.50 PB"

    def test_negative(self):
        assert fmt_bytes(-3 * MB) == "-3.00 MB"

    def test_zero(self):
        assert fmt_bytes(0) == "0 B"

    def test_boundary_exact_mb(self):
        assert fmt_bytes(MB) == "1.00 MB"


class TestFmtCount:
    def test_plain(self):
        assert fmt_count(42) == "42"

    def test_thousands(self):
        assert fmt_count(850_000) == "850.0K"

    def test_millions(self):
        assert fmt_count(124e6) == "124.0M"

    def test_negative(self):
        assert fmt_count(-1500) == "-1.5K"


class TestFmtFlops:
    def test_teraflops(self):
        assert fmt_flops(338e12) == "338.0 TFLOP/s"

    def test_petaflops(self):
        assert fmt_flops(1.7e15) == "1.7 PFLOP/s"

    def test_small(self):
        assert fmt_flops(10) == "10 FLOP/s"


class TestFmtRate:
    def test_kilo(self):
        assert fmt_rate(660_000) == "660.00K tokens/s"

    def test_mega(self):
        assert fmt_rate(3_600_000) == "3.60M tokens/s"

    def test_custom_unit(self):
        assert fmt_rate(1540, "samples/s") == "1.54K samples/s"

    def test_sub_kilo(self):
        assert fmt_rate(918) == "918.0 tokens/s"


@pytest.mark.parametrize("value", [1.0, 999.0, 1e3, 1e6, 1e9, 1e12, 1e15])
def test_fmt_count_monotone_suffixes(value):
    # Every magnitude renders without error and round-trips its sign.
    assert not fmt_count(value).startswith("-")
    assert fmt_count(-value).startswith("-")
