"""Exception hierarchy contracts."""

import pytest

from repro.common.errors import (
    CompilationError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
)


def test_all_derive_from_repro_error():
    for exc_type in (ConfigurationError, CompilationError,
                     OutOfMemoryError, SimulationError):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    # Callers using plain ValueError handling still catch config mistakes.
    assert issubclass(ConfigurationError, ValueError)


def test_oom_is_compilation_error():
    # Sweeps that record compile failures also record OOMs.
    assert issubclass(OutOfMemoryError, CompilationError)


def test_oom_carries_sizes():
    err = OutOfMemoryError("too big", required_bytes=100.0,
                           available_bytes=40.0)
    assert err.required_bytes == 100.0
    assert err.available_bytes == 40.0
    assert "too big" in str(err)


def test_oom_defaults_zero():
    err = OutOfMemoryError("x")
    assert err.required_bytes == 0.0
    assert err.available_bytes == 0.0


def test_catching_repro_error_catches_oom():
    with pytest.raises(ReproError):
        raise OutOfMemoryError("boom")
