"""Exception hierarchy contracts."""

import pytest

from repro.common.errors import (
    CompilationError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
)


def test_all_derive_from_repro_error():
    for exc_type in (ConfigurationError, CompilationError,
                     OutOfMemoryError, SimulationError):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    # Callers using plain ValueError handling still catch config mistakes.
    assert issubclass(ConfigurationError, ValueError)


def test_oom_is_compilation_error():
    # Sweeps that record compile failures also record OOMs.
    assert issubclass(OutOfMemoryError, CompilationError)


def test_oom_carries_sizes():
    err = OutOfMemoryError("too big", required_bytes=100.0,
                           available_bytes=40.0)
    assert err.required_bytes == 100.0
    assert err.available_bytes == 40.0
    assert "too big" in str(err)


def test_oom_defaults_zero():
    err = OutOfMemoryError("x")
    assert err.required_bytes == 0.0
    assert err.available_bytes == 0.0


def test_catching_repro_error_catches_oom():
    with pytest.raises(ReproError):
        raise OutOfMemoryError("boom")


class TestErrorRecordTraceback:
    def _failing_record(self, capture):
        from repro.common.errors import ErrorRecord

        try:
            raise OutOfMemoryError("oom", required_bytes=2.0,
                                   available_bytes=1.0)
        except OutOfMemoryError as exc:
            return ErrorRecord.from_exception(exc, phase="compile",
                                              capture_traceback=capture)

    def test_not_captured_by_default(self):
        record = self._failing_record(capture=False)
        assert record.traceback is None
        assert "traceback" not in record.to_dict()

    def test_captured_keeps_original_frames(self):
        record = self._failing_record(capture=True)
        assert "Traceback (most recent call last)" in record.traceback
        assert "_failing_record" in record.traceback
        assert "OutOfMemoryError" in record.traceback

    def test_round_trips_through_dict(self):
        from repro.common.errors import ErrorRecord

        record = self._failing_record(capture=True)
        back = ErrorRecord.from_dict(record.to_dict())
        assert back.traceback == record.traceback

    def test_quarantined_error_carries_crash_count(self):
        from repro.common.errors import QuarantinedError

        err = QuarantinedError("poison", crashes=3)
        assert isinstance(err, ReproError)
        assert err.crashes == 3
