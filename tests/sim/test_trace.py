"""Execution traces."""

import pytest

from repro.sim.trace import Trace, TraceRecord


@pytest.fixture()
def trace():
    t = Trace()
    t.record(0.0, 1.0, "attn", item=0)
    t.record(1.0, 2.0, "attn", item=1)
    t.record(0.5, 3.0, "ffn", category="compute", item=0)
    t.record(3.0, 3.5, "dma", category="transfer", item=0)
    return t


class TestRecord:
    def test_duration(self):
        rec = TraceRecord(start=1.0, end=3.5, task="x")
        assert rec.duration == 2.5

    def test_reversed_interval_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.add(TraceRecord(start=2.0, end=1.0, task="x"))

    def test_record_convenience_stores_meta(self):
        trace = Trace()
        rec = trace.record(0.0, 1.0, "k", flops=42)
        assert rec.meta["flops"] == 42


class TestAggregates:
    def test_len_and_iter(self, trace):
        assert len(trace) == 4
        assert len(list(trace)) == 4

    def test_makespan(self, trace):
        assert trace.makespan == 3.5

    def test_makespan_empty(self):
        assert Trace().makespan == 0.0

    def test_busy_time_by_task(self, trace):
        busy = trace.busy_time_by_task()
        assert busy["attn"] == pytest.approx(2.0)
        assert busy["ffn"] == pytest.approx(2.5)

    def test_busy_time_by_category(self, trace):
        by_cat = trace.busy_time_by_category()
        assert by_cat["transfer"] == pytest.approx(0.5)

    def test_items_by_task(self, trace):
        assert trace.items_by_task()["attn"] == 2

    def test_task_throughput(self, trace):
        # attn: 2 items over a [0, 2] span.
        assert trace.task_throughput("attn") == pytest.approx(1.0)

    def test_task_throughput_unknown(self, trace):
        assert trace.task_throughput("nope") == 0.0

    def test_task_throughput_zero_span(self):
        t = Trace()
        t.record(1.0, 1.0, "instant")
        assert t.task_throughput("instant") == float("inf")


class TestFilter:
    def test_by_category(self, trace):
        assert len(trace.filter(category="transfer")) == 1

    def test_by_task(self, trace):
        assert len(trace.filter(task="attn")) == 2

    def test_by_both(self, trace):
        assert len(trace.filter(category="compute", task="ffn")) == 1

    def test_filter_returns_new_trace(self, trace):
        filtered = trace.filter(task="attn")
        filtered.record(10.0, 11.0, "extra")
        assert len(trace) == 4
