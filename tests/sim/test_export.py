"""Chrome trace export."""

import json

import pytest

from repro.sim.export import to_chrome_trace, write_chrome_trace
from repro.sim.trace import Trace


@pytest.fixture()
def trace():
    t = Trace()
    t.record(0.0, 0.5, "attn", category="compute", item=0, flops=123)
    t.record(0.5, 1.5, "ffn", category="compute", item=0)
    t.record(1.5, 2.0, "attn", category="compute", item=1)
    return t


class TestChromeFormat:
    def test_has_trace_events(self, trace):
        payload = to_chrome_trace(trace)
        assert "traceEvents" in payload
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3

    def test_microsecond_conversion(self, trace):
        events = [e for e in to_chrome_trace(trace)["traceEvents"]
                  if e["ph"] == "X"]
        first = events[0]
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(0.5e6)

    def test_tasks_get_distinct_threads(self, trace):
        events = [e for e in to_chrome_trace(trace)["traceEvents"]
                  if e["ph"] == "X"]
        tids = {e["name"].split("#")[0]: e["tid"] for e in events}
        assert tids["attn"] != tids["ffn"]

    def test_thread_name_metadata(self, trace):
        metas = [e for e in to_chrome_trace(trace)["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        names = {m["args"]["name"] for m in metas}
        assert names == {"attn", "ffn"}

    def test_meta_propagated(self, trace):
        events = [e for e in to_chrome_trace(trace)["traceEvents"]
                  if e["ph"] == "X"]
        assert events[0]["args"]["flops"] == 123

    def test_process_name(self, trace):
        payload = to_chrome_trace(trace, process_name="wse-run")
        meta = payload["traceEvents"][0]
        assert meta["args"]["name"] == "wse-run"


class TestWrite:
    def test_writes_valid_json(self, trace, tmp_path):
        path = write_chrome_trace(trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_trace(self, tmp_path):
        path = write_chrome_trace(Trace(), tmp_path / "empty.json")
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 1  # just process meta


class TestEndToEnd:
    def test_wse_run_trace_exports(self, tmp_path):
        from repro import CerebrasBackend, TrainConfig, gpt2_model
        backend = CerebrasBackend()
        run = backend.run(backend.compile(
            gpt2_model("mini"), TrainConfig(batch_size=8, seq_len=256)))
        path = write_chrome_trace(run.trace, tmp_path / "wse.json")
        payload = json.loads(path.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # Each kernel processed 8 samples.
        assert len(complete) == 8 * len(run.phases[0].tasks) / 2
