"""Validate the DES against tandem-queue theory.

The WSE runtime's pipeline is a tandem queue with bounded WIP; queueing
theory gives closed forms for its makespan in special cases. The DES
must agree — this is the cross-check that the simulation engine, not
just the calibration, is sound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cerebras.runtime import WSERuntime
from repro.sim.trace import Trace


def simulate(service_times, depth, batch):
    runtime = WSERuntime()
    order = [f"s{i}" for i in range(len(service_times))]
    services = dict(zip(order, service_times))
    trace = Trace()
    makespan = runtime._simulate_pipeline(order, services, depth, batch,
                                          trace)
    return makespan, trace


class TestClosedForms:
    def test_unbounded_wip_formula(self):
        """With depth >= batch, makespan = sum(t) + (B-1) * t_max."""
        services = [0.5, 2.0, 1.0]
        batch = 7
        makespan, _trace = simulate(services, depth=batch, batch=batch)
        assert makespan == pytest.approx(sum(services) + (batch - 1) * 2.0)

    def test_wip_one_serializes(self):
        """Depth 1: samples pass one at a time; makespan = B * sum(t)."""
        services = [0.5, 2.0, 1.0]
        batch = 5
        makespan, _trace = simulate(services, depth=1, batch=batch)
        assert makespan == pytest.approx(batch * sum(services))

    def test_single_stage(self):
        makespan, _trace = simulate([1.5], depth=4, batch=6)
        assert makespan == pytest.approx(9.0)

    def test_uniform_stages(self):
        """n equal stages: makespan = (n + B - 1) * t."""
        makespan, _trace = simulate([1.0] * 5, depth=100, batch=10)
        assert makespan == pytest.approx((5 + 10 - 1) * 1.0)


@settings(max_examples=30, deadline=None)
@given(services=st.lists(st.floats(min_value=0.01, max_value=3.0),
                         min_size=1, max_size=8),
       depth=st.integers(min_value=1, max_value=12),
       batch=st.integers(min_value=1, max_value=12))
def test_bounds_and_conservation(services, depth, batch):
    makespan, trace = simulate(services, depth, batch)
    total = sum(services)
    t_max = max(services)
    # Lower bounds: critical path of one sample, bottleneck serialization,
    # and WIP-limited rate.
    assert makespan >= total - 1e-9
    assert makespan >= batch * t_max - 1e-9
    assert makespan >= batch * total / max(depth, 1) / 2 - 1e-9
    # Upper bound: full serialization.
    assert makespan <= batch * total + 1e-9
    # Conservation: every stage served every sample exactly once.
    counts = trace.items_by_task()
    assert all(count == batch for count in counts.values())
    assert len(counts) == len(services)


@settings(max_examples=20, deadline=None)
@given(services=st.lists(st.floats(min_value=0.05, max_value=2.0),
                         min_size=2, max_size=6),
       batch=st.integers(min_value=4, max_value=16))
def test_deeper_wip_never_slower(services, batch):
    shallow, _t1 = simulate(services, depth=1, batch=batch)
    deep, _t2 = simulate(services, depth=batch, batch=batch)
    assert deep <= shallow + 1e-9
