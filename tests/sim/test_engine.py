"""Discrete-event simulator core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Resource, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.schedule(2.0, log.append, "middle")
        sim.run()
        assert log == ["early", "middle", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(10.0, log.append, "b")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            log.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_final_time_is_last_event(self):
        sim = Simulator()
        sim.schedule(4.5, lambda: None)
        assert sim.run() == 4.5


class TestTieBreaking:
    """Equal-timestamp determinism — the resilience layer's replay
    guarantees (seeded faults, journal resume) lean on it."""

    def test_nested_equal_timestamp_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []

        def parent(tag):
            log.append(f"parent-{tag}")
            # zero-delay children land at the same timestamp as the
            # remaining parents but must fire after them
            sim.schedule(0.0, log.append, f"child-{tag}")

        sim.schedule(1.0, parent, "a")
        sim.schedule(1.0, parent, "b")
        sim.run()
        assert log == ["parent-a", "parent-b", "child-a", "child-b"]

    def test_schedule_vs_schedule_at_ties(self):
        sim = Simulator()
        log = []
        sim.schedule_at(2.0, log.append, "at")
        sim.schedule(2.0, log.append, "delay")
        sim.run()
        assert log == ["at", "delay"]

    def test_tie_order_is_reproducible_across_runs(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(20):
                sim.schedule(1.0, log.append, i)
                sim.schedule(0.0, log.append, 100 + i)
            sim.run()
            return log

        assert run_once() == run_once()


class TestNegativeDelays:
    def test_negative_delay_rejected_midrun(self):
        sim = Simulator()

        def bad():
            sim.schedule(-0.5, lambda: None)

        sim.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_delay_allowed(self):
        sim = Simulator()
        log = []
        sim.schedule(0.0, log.append, "now")
        sim.run()
        assert log == ["now"]

    def test_schedule_at_current_time_allowed(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, log.append,
                                                  "same-time"))
        sim.run()
        assert log == ["same-time"]


class TestEventCap:
    """`max_events` must stop any runaway loop a callback creates."""

    def test_self_rescheduling_callback_hits_cap(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)  # zero-delay: time never advances

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_events=50)

    def test_cap_leaves_simulator_queriable(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=10)
        assert sim.events_processed == 11
        assert sim.pending >= 1  # the loop's next event is still queued

    def test_fanout_past_cap_detected(self):
        sim = Simulator()

        def breed():
            sim.schedule(1.0, breed)
            sim.schedule(1.0, breed)

        sim.schedule(0.0, breed)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_well_formed_workload_unaffected_by_cap(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i), log.append, i)
        assert sim.run(max_events=5) == 4.0
        assert log == [0, 1, 2, 3, 4]

    def test_cap_respected_with_until(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events=25)


class TestResource:
    def test_capacity_validated(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        granted = []
        res.request(granted.append, 1)
        res.request(granted.append, 2)
        res.request(granted.append, 3)
        sim.run()
        assert granted == [1, 2]
        assert res.queue_length == 1

    def test_release_wakes_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def hold(tag, duration):
            order.append(tag)
            sim.schedule(duration, res.release)

        res.request(hold, "a", 1.0)
        res.request(hold, "b", 1.0)
        res.request(hold, "c", 1.0)
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_release_without_request_rejected(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def work():
            sim.schedule(2.0, res.release)

        res.request(work)
        sim.run()
        assert res.busy_time == pytest.approx(2.0)
        assert res.utilization(4.0) == pytest.approx(0.5)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                min_size=1, max_size=50))
def test_pipeline_makespan_formula(service_times):
    """A single-stage queue serving N jobs takes sum(t) seconds."""
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def job(duration):
        sim.schedule(duration, res.release)

    for duration in service_times:
        res.request(job, duration)
    total = sim.run()
    assert total == pytest.approx(sum(service_times), rel=1e-9)


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=20))
def test_determinism(n_events, seed_unused):
    """Identical schedules produce identical traces."""

    def run_once():
        sim = Simulator()
        log = []
        for i in range(n_events):
            sim.schedule(float(i % 3), log.append, i)
        sim.run()
        return log

    assert run_once() == run_once()
