"""Tensor-parallel internals: comm sections, bandwidth selection."""

import pytest

from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.sambanova.compiler import RDUCompiler


@pytest.fixture(scope="module")
def compiler():
    return RDUCompiler()


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=16, seq_len=1024,
                       precision=PrecisionPolicy.pure(Precision.BF16))


class TestCommSections:
    def test_four_allreduces_per_layer(self, compiler, train):
        model = gpt2_model("small").with_layers(5)
        report = compiler.compile(model, train, mode="O1", tp=2)
        comm = [p for p in report.phases if p.name == "allreduce"]
        assert len(comm) == 1
        assert comm[0].invocations == 4 * 5

    def test_volume_scales_with_hidden_and_batch(self, compiler, train):
        small = compiler.compile(gpt2_model("small"), train, mode="O1",
                                 tp=2)
        big = compiler.compile(gpt2_model("small"),
                               train.with_batch_size(32), mode="O1", tp=2)

        def volume(report):
            section = next(s for s in report.meta["sections"]
                           if s.kind == "comm")
            return section.ops[0].meta["volume"]

        assert volume(big) == pytest.approx(2 * volume(small))

    def test_intra_node_faster_than_cross(self, compiler, train):
        model = gpt2_model("small")
        intra = compiler.compile(model, train, mode="O1", tp=2)
        cross = compiler.compile(model, train, mode="O1", tp=4)

        from repro.sambanova.compiler import SECTION_SWITCH_SECONDS

        def comm_seconds(report):
            phase = next(p for p in report.phases if p.name == "allreduce")
            return phase.runtime - SECTION_SWITCH_SECONDS

        # TP4's per-invocation all-reduce is far slower despite a volume
        # only 1.5x larger: it crosses the 3 GB/s rack fabric.
        assert comm_seconds(cross) > 20 * comm_seconds(intra)

    def test_no_comm_without_tp(self, compiler, train):
        report = compiler.compile(gpt2_model("small"), train, mode="O1")
        assert not [p for p in report.phases if p.name == "allreduce"]


class TestShardedDemands:
    def test_matmul_flops_divided(self, compiler, train):
        model = gpt2_model("small")
        base = compiler.compile(model, train, mode="O1", tp=1)
        halved = compiler.compile(model, train, mode="O1", tp=2)

        def ffn_flops(report):
            for phase in report.phases:
                for task in phase.tasks:
                    if "ffn_up" in task.name and "bwd" not in task.name:
                        return task.flops
            raise AssertionError("ffn_up task not found")

        assert ffn_flops(halved) == pytest.approx(ffn_flops(base) / 2)

    def test_elementwise_not_sharded(self, compiler, train):
        model = gpt2_model("small")
        base = compiler.compile(model, train, mode="O1", tp=1)
        halved = compiler.compile(model, train, mode="O1", tp=2)

        def ln_flops(report):
            for phase in report.phases:
                for task in phase.tasks:
                    if "ln1" in task.name and "bwd" not in task.name:
                        return task.flops
            raise AssertionError("ln1 task not found")

        assert ln_flops(halved) == pytest.approx(ln_flops(base))

    def test_report_chip_count(self, compiler, train):
        report = compiler.compile(gpt2_model("small"), train, mode="O1",
                                  tp=4)
        assert report.n_chips == 4
