"""Section and OpDemand dataclasses."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sambanova.sections import OpDemand, Section


def demand(name="op", pcus=100.0, pmus=50.0, flops=1e9,
           weight_bytes=1e6, io_bytes=2e6, **kw):
    return OpDemand(name=name, kind="ffn_up", flops=flops, pcus=pcus,
                    pmus=pmus, weight_bytes=weight_bytes,
                    io_bytes=io_bytes, **kw)


class TestOpDemand:
    def test_negative_resources_rejected(self):
        with pytest.raises(ConfigurationError):
            demand(pcus=-1.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            demand(flops=-1.0)


class TestSection:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Section(name="s", ops=[])

    def test_zero_invocations_rejected(self):
        with pytest.raises(ConfigurationError):
            Section(name="s", ops=[demand()], invocations=0)

    def test_resource_sums(self):
        section = Section(name="s", ops=[demand(pcus=100, pmus=40),
                                         demand(name="b", pcus=50, pmus=10)])
        assert section.pcus == 150.0
        assert section.pmus == 50.0

    def test_flops_and_weights_sum(self):
        section = Section(name="s", ops=[demand(), demand(name="b")])
        assert section.flops == 2e9
        assert section.weight_bytes == 2e6

    def test_boundary_is_edge_ops_only(self):
        """Fusion's point: interior op traffic never touches DDR."""
        ops = [demand(name="first", io_bytes=10.0),
               demand(name="mid", io_bytes=1000.0),
               demand(name="last", io_bytes=20.0)]
        section = Section(name="s", ops=ops)
        assert section.boundary_bytes == pytest.approx(5.0 + 10.0)

    def test_single_op_boundary_is_full_io(self):
        section = Section(name="s", ops=[demand(io_bytes=10.0)])
        assert section.boundary_bytes == pytest.approx(10.0)

    def test_ddr_bytes(self):
        section = Section(name="s", ops=[demand(io_bytes=10.0,
                                                weight_bytes=5.0)])
        assert section.ddr_bytes == pytest.approx(15.0)
