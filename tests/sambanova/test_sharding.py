"""Matrix sharding (Table II(b))."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB
from repro.sambanova.sharding import (
    SHARD_WEIGHT_BYTES,
    ShardPlan,
    plan_shards,
    shard_pcu_demand,
)

PMU_BYTES = 512 * KB
ROOT = 1.33


class TestPlanShards:
    def test_small_matrix_unsharded(self):
        plan = plan_shards(10 * MB, PMU_BYTES, ROOT)
        assert not plan.sharded
        assert plan.n_sections == 1

    def test_large_matrix_sharded(self):
        plan = plan_shards(200 * MB, PMU_BYTES, ROOT)
        assert plan.sharded
        assert plan.n_shards == 8  # ceil(200 / 28)

    def test_shard_fits_budget(self):
        plan = plan_shards(500 * MB, PMU_BYTES, ROOT)
        assert plan.shard_weight_bytes <= SHARD_WEIGHT_BYTES

    def test_sections_cover_all_shards(self):
        plan = plan_shards(900 * MB, PMU_BYTES, ROOT)
        assert plan.n_sections * plan.shards_per_section >= plan.n_shards

    def test_shards_grow_with_size(self):
        p1 = plan_shards(100 * MB, PMU_BYTES, ROOT)
        p2 = plan_shards(400 * MB, PMU_BYTES, ROOT)
        assert p2.n_shards > p1.n_shards

    def test_per_section_pcus_track_shards_not_size(self):
        """Table II(b): PCU per section correlates with shard geometry."""
        p1 = plan_shards(300 * MB, PMU_BYTES, ROOT)
        p2 = plan_shards(600 * MB, PMU_BYTES, ROOT)
        # Same shard size budget -> near-identical per-section PCUs.
        assert p2.pcus_per_section == pytest.approx(
            p1.pcus_per_section, rel=0.15)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(-1.0, PMU_BYTES, ROOT)

    def test_bad_pmu_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(1.0, 0.0, ROOT)


class TestShardPcuDemand:
    def test_sublinear(self):
        small = shard_pcu_demand(10 * MB, ROOT)
        big = shard_pcu_demand(80 * MB, ROOT)
        assert big / small < 8.0
        assert big > small


@given(st.floats(min_value=1.0, max_value=4e9))
def test_plan_invariants(weight_bytes):
    plan = plan_shards(weight_bytes, PMU_BYTES, ROOT)
    assert plan.n_shards >= 1
    assert plan.n_sections >= 1
    assert plan.shards_per_section >= 1
    assert plan.shards_per_section <= plan.n_shards
    assert plan.shard_weight_bytes * plan.n_shards == pytest.approx(
        weight_bytes, rel=1e-6)
    # Equality only when the plan is a single unsharded section.
    assert ShardPlan.sharded.fget(plan) == (plan.n_shards > 1)
