"""RDU runtime: sequential sections, mode performance, TP cliff."""

import pytest

from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.sambanova.backend import SambaNovaBackend


@pytest.fixture(scope="module")
def backend():
    return SambaNovaBackend()


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=16, seq_len=1024,
                       precision=PrecisionPolicy.pure(Precision.BF16))


@pytest.fixture(scope="module")
def small():
    return gpt2_model("small")


class TestSequentialExecution:
    def test_step_time_is_sum_of_invocations(self, backend, small, train):
        compiled = backend.compile(small, train, mode="O1")
        run = backend.run(compiled)
        expected = sum(p.runtime * p.invocations for p in compiled.phases)
        assert run.step_time == pytest.approx(expected, rel=1e-6)

    def test_trace_covers_every_invocation(self, backend, small, train):
        compiled = backend.compile(small, train, mode="O1")
        run = backend.run(compiled)
        expected = sum(p.invocations for p in compiled.phases)
        assert len(run.trace) == expected

    def test_no_overlap_between_sections(self, backend, small, train):
        run = backend.run(backend.compile(small, train, mode="O1"))
        records = sorted(run.trace.records, key=lambda r: r.start)
        for a, b in zip(records, records[1:]):
            assert b.start >= a.end - 1e-12


class TestModePerformance:
    def test_o0_severely_limited(self, backend, small, train):
        """Fig. 9b: operator mode delivers a fraction of O1/O3."""
        rates = {mode: backend.run(
            backend.compile(small, train, mode=mode)).achieved_flops
            for mode in ("O0", "O1", "O3")}
        assert rates["O0"] < 0.5 * rates["O1"]
        assert rates["O0"] < 0.3 * rates["O3"]

    def test_tflops_grow_with_layers_o3(self, backend, train):
        """Fig. 9b: O3 TFLOPs increase with depth, growth slows.

        Uses the decoder-block probe (Sec. IV-D methodology) so the
        fixed embedding/loss/optimizer sections are what amortizes.
        """
        from repro.workloads import decoder_block_probe
        tf = [backend.run(backend.compile(decoder_block_probe(768, n),
                                          train, mode="O3")).achieved_flops
              for n in (4, 8, 16, 32)]
        assert tf[0] < tf[1] < tf[2] < tf[3]
        assert (tf[3] / tf[2]) < (tf[1] / tf[0])

    def test_tflops_grow_with_hidden_o1(self, backend, train):
        """Fig. 9c: O1 TFLOPs rise with hidden size."""
        big = TrainConfig(batch_size=32, seq_len=2048,
                          precision=PrecisionPolicy.pure(Precision.BF16))
        base = llama2_model("7b")
        tf = [backend.run(backend.compile(
            base.with_hidden(hs).with_layers(4), big,
            mode="O1")).achieved_flops for hs in (3072, 5120, 8192)]
        assert tf[0] < tf[1] < tf[2]

    def test_near_linear_batch_scaling(self, backend, small, train):
        """Fig. 12: small-batch RDU throughput is overhead-dominated."""
        def rate(batch):
            t = train.with_batch_size(batch)
            return backend.run(backend.compile(small, t,
                                               mode="O1")).tokens_per_second

        assert rate(8) / rate(4) > 1.5
        assert rate(16) / rate(8) > 1.4


class TestTensorParallelCliff:
    @pytest.fixture(scope="class")
    def tp_runs(self, backend):
        train = TrainConfig(batch_size=8, seq_len=4096,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        model = llama2_model("7b")
        return {tp: backend.run(backend.compile(model, train, mode="O1",
                                                tp=tp))
                for tp in (2, 4, 8)}

    def test_cross_machine_drop(self, tp_runs):
        """Table III: TP2 -> TP4 loses ~40%."""
        ratio = tp_runs[4].tokens_per_second / tp_runs[2].tokens_per_second
        assert 0.45 < ratio < 0.75

    def test_further_scaling_flat(self, tp_runs):
        """Table III: TP4 -> TP8 changes little (945 vs 918)."""
        ratio = tp_runs[8].tokens_per_second / tp_runs[4].tokens_per_second
        assert 0.85 < ratio < 1.15

    def test_intra_machine_comm_negligible(self, tp_runs):
        assert tp_runs[2].meta["comm_time"] < 0.05 * tp_runs[2].step_time

    def test_cross_machine_comm_dominant(self, tp_runs):
        assert tp_runs[4].meta["comm_time"] > 0.3 * tp_runs[4].step_time


class TestPrecisionStudy:
    def test_mixed_beats_matmul_only(self, backend):
        """Table IV: +34.3% from full mixed precision on 7B."""
        model = llama2_model("7b")
        base_train = TrainConfig(
            batch_size=16, seq_len=4096,
            precision=PrecisionPolicy.matmul_only(Precision.BF16))
        mixed_train = base_train.with_precision(
            PrecisionPolicy.mixed(Precision.BF16))
        base = backend.run(backend.compile(model, base_train, mode="O1",
                                           tp=2))
        mixed = backend.run(backend.compile(model, mixed_train, mode="O1",
                                            tp=2))
        gain = mixed.tokens_per_second / base.tokens_per_second - 1.0
        assert 0.2 < gain < 0.5


class TestReportContents:
    def test_traffic_accounts_all_sections(self, backend, small, train):
        compiled = backend.compile(small, train, mode="O0")
        run = backend.run(compiled)
        assert run.global_traffic_bytes_per_step > 0

    def test_timings_partition_step(self, backend, small, train):
        run = backend.run(backend.compile(small, train, mode="O3"))
        total = (run.meta["ddr_time"] + run.meta["switch_time"]
                 + run.meta["comm_time"]
                 + run.meta["compute_fraction"] * run.step_time)
        assert total == pytest.approx(run.step_time, rel=0.02)
