"""RDU compiler: modes, allocation, partitioning accounting."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.core.metrics import allocation_ratio, weighted_load_imbalance
from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.sambanova.compiler import (
    RDUCompiler,
    SECTION_PCU_BUDGET,
    SECTION_PMU_BUDGET,
)
from repro.workloads import decoder_block_probe


@pytest.fixture(scope="module")
def compiler():
    return RDUCompiler()


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=16, seq_len=1024,
                       precision=PrecisionPolicy.pure(Precision.BF16))


@pytest.fixture(scope="module")
def small():
    return gpt2_model("small")


class TestModeStructure:
    def test_o0_one_op_per_section(self, compiler, small, train):
        report = compiler.compile(small, train, mode="O0")
        for phase in report.phases:
            assert len(phase.tasks) == 1

    def test_o1_has_fused_modules(self, compiler, small, train):
        report = compiler.compile(small, train, mode="O1")
        multi = [p for p in report.phases if len(p.tasks) > 1]
        assert multi, "O1 must fuse at least some operators"

    def test_o1_fewer_sections_than_o0(self, compiler, small, train):
        o0 = compiler.compile(small, train, mode="O0")
        o1 = compiler.compile(small, train, mode="O1")
        assert len(o1.phases) < len(o0.phases)

    def test_o0_o1_sections_invoked_per_layer(self, compiler, small, train):
        report = compiler.compile(small.with_layers(7), train, mode="O1")
        layer_phases = [p for p in report.phases
                        if p.invocations == 7]
        assert layer_phases, "decoder sections must run once per layer"

    def test_o3_sections_respect_budget(self, compiler, small, train):
        report = compiler.compile(small, train, mode="O3")
        for phase in report.phases:
            if len(phase.tasks) > 1:  # packed sections
                assert phase.compute_units <= SECTION_PCU_BUDGET + 1e-6
                assert phase.memory_units <= SECTION_PMU_BUDGET + 1e-6

    def test_o3_all_sections_run_once(self, compiler, small, train):
        report = compiler.compile(small, train, mode="O3")
        assert all(p.invocations == 1 for p in report.phases)

    def test_unknown_mode_rejected(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, mode="O2")


class TestAllocation:
    def test_never_exceeds_60pct(self, compiler, small, train):
        """The paper's headline RDU finding (Fig. 7)."""
        for mode in ("O0", "O1", "O3"):
            for layers in (4, 12, 24):
                report = compiler.compile(small.with_layers(layers), train,
                                          mode=mode)
                assert allocation_ratio(report) < 0.62

    def test_mode_ordering_o3_highest_o0_lowest(self, compiler, small,
                                                train):
        ratios = {mode: allocation_ratio(
            compiler.compile(small, train, mode=mode))
            for mode in ("O0", "O1", "O3")}
        assert ratios["O3"] > ratios["O1"] > ratios["O0"]

    def test_o3_rises_then_stabilizes_with_layers(self, compiler, small,
                                                  train):
        ratios = [allocation_ratio(
            compiler.compile(small.with_layers(n), train, mode="O3"))
            for n in (4, 8, 16, 32)]
        assert ratios[1] > ratios[0]
        assert abs(ratios[3] - ratios[2]) < 0.05

    def test_o0_allocation_rises_with_hidden(self, compiler, train):
        ratios = [allocation_ratio(compiler.compile(
            decoder_block_probe(hs, 8), train, mode="O0"))
            for hs in (480, 1024, 1600)]
        assert ratios == sorted(ratios)


class TestLoadImbalance:
    def test_o1_beats_o3(self, compiler, small, train):
        """Fig. 8: fusion balances better than O3's packing."""
        o1 = weighted_load_imbalance(compiler.compile(small, train,
                                                      mode="O1"))
        o3 = weighted_load_imbalance(compiler.compile(small, train,
                                                      mode="O3"))
        assert o1 > o3

    def test_o3_li_degrades_with_layers(self, compiler, small, train):
        li4 = weighted_load_imbalance(
            compiler.compile(small.with_layers(4), train, mode="O3"))
        li32 = weighted_load_imbalance(
            compiler.compile(small.with_layers(32), train, mode="O3"))
        assert li32 < li4

    def test_o1_o3_gap_holds_across_hidden(self, compiler, train):
        # Fig. 8b's dominant feature: O1's fusion stays far better
        # balanced than O3 at every hidden size. (The paper's mild
        # rising-with-HS trend is a noted deviation; see EXPERIMENTS.md.)
        for hs in (480, 1024, 1600):
            probe = decoder_block_probe(hs, 8)
            o1 = weighted_load_imbalance(
                compiler.compile(probe, train, mode="O1"))
            o3 = weighted_load_imbalance(
                compiler.compile(probe, train, mode="O3"))
            assert o1 > o3 + 0.15


class TestSharding:
    def test_lm_head_sharded_at_large_hidden(self, compiler, train):
        model = llama2_model("7b").with_hidden(5120).with_layers(4)
        report = compiler.compile(model, train, mode="O1")
        shard_phases = [p for p in report.phases if ".S" in p.name]
        assert len(shard_phases) >= 2

    def test_small_hidden_head_unsharded(self, compiler, train):
        model = decoder_block_probe(768, 4)  # probe vocab: tiny head
        report = compiler.compile(model, train, mode="O1")
        assert not [p for p in report.phases if "lm_head.S" in p.name]

    def test_partition_summary_ratios(self, compiler, small, train):
        report = compiler.compile(small.with_layers(8), train, mode="O3")
        summary = compiler.partition_summary(report)
        # Table II(a): backward needs more sections per decoder than
        # forward.
        assert summary["backward_ratio"] > summary["forward_ratio"]
        assert summary["forward_sections"] >= 1


class TestTensorParallel:
    def test_tp_bounds(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, tp=0)
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, tp=16)

    def test_tp_adds_comm_sections(self, compiler, small, train):
        report = compiler.compile(small, train, tp=2)
        assert any(p.name == "allreduce" for p in report.phases)

    def test_tp_shrinks_per_chip_demands(self, compiler, small, train):
        r1 = compiler.compile(small, train, tp=1)
        r4 = compiler.compile(small, train, tp=4)
        assert (allocation_ratio(r4, kind="compute")
                < allocation_ratio(r1, kind="compute"))

    def test_ddr_capacity_enforced(self, compiler, train):
        huge = llama2_model("70b")
        big_batch = TrainConfig(
            batch_size=64, seq_len=4096,
            precision=PrecisionPolicy.mixed(Precision.BF16))
        with pytest.raises(OutOfMemoryError):
            compiler.compile(huge, big_batch, tp=1)
        # Tensor parallelism divides the state and fits.
        compiler.compile(huge, big_batch, tp=8)


class TestPrecisionEffects:
    def test_cast_penalty_applied(self, compiler, small):
        pure = compiler.compile(small, TrainConfig(
            batch_size=16, seq_len=1024,
            precision=PrecisionPolicy.mixed(Precision.BF16)))
        casty = compiler.compile(small, TrainConfig(
            batch_size=16, seq_len=1024,
            precision=PrecisionPolicy.matmul_only(Precision.BF16)))
        assert casty.meta["pcu_rate"] < pure.meta["pcu_rate"]
