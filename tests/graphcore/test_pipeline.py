"""IPU pipeline execution: bottleneck law, distributions, precision."""

import pytest

from repro.graphcore.backend import GraphcoreBackend
from repro.hardware.specs import BOW_POD
from repro.models.config import TrainConfig
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe


@pytest.fixture(scope="module")
def backend():
    return GraphcoreBackend()


@pytest.fixture(scope="module")
def pod():
    return GraphcoreBackend(BOW_POD)


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=64, seq_len=1024)


class TestExecution:
    def test_all_micros_complete(self, backend, train):
        model = decoder_block_probe(768, 4)
        compiled = backend.compile(model, train, n_ipus=2)
        run = backend.run(compiled)
        micros = compiled.meta["micro_batches"]
        counts = run.trace.items_by_task()
        for stage in compiled.meta["stages"]:
            # fwd + bwd per micro-batch.
            assert counts[stage.name] == 2 * micros

    def test_throughput_identities(self, backend, train):
        model = decoder_block_probe(768, 4)
        run = backend.run(backend.compile(model, train, n_ipus=2))
        assert run.tokens_per_second == pytest.approx(
            run.samples_per_second * train.seq_len)

    def test_step_bounded_by_bottleneck(self, backend, train):
        model = decoder_block_probe(768, 4)
        compiled = backend.compile(model, train, n_ipus=2)
        run = backend.run(compiled)
        stages = compiled.meta["stages"]
        micros = compiled.meta["micro_batches"]
        bottleneck = max(s.compute_seconds for s in stages)
        # fwd (1x) + bwd (2x) of the bottleneck, times the micro count,
        # is a lower bound on the schedule.
        assert run.step_time >= 3.0 * bottleneck * micros * 0.99


class TestBottleneckLaw:
    def test_throughput_tracks_max_loaded_ipu(self, pod, train):
        """Fig. 11c: the most heavily loaded IPU sets throughput."""
        model = decoder_block_probe(768, 12)
        rates = {}
        for dist in ([3, 3, 3, 3, 0], [6, 2, 2, 2, 0], [4, 4, 2, 2, 0]):
            run = pod.run(pod.compile(model, train, n_ipus=8,
                                      layers_per_ipu=dist))
            rates[max(dist)] = run.samples_per_second
        assert rates[3] > rates[4] > rates[6]

    def test_inverse_layer_proportionality(self, pod):
        """Sec. VI-A3c: throughput ~ 1 / max layers per IPU."""
        train = TrainConfig(batch_size=128, seq_len=1024)
        r2 = pod.run(pod.compile(decoder_block_probe(768, 22), train,
                                 n_ipus=16)).samples_per_second
        r4 = pod.run(pod.compile(decoder_block_probe(768, 44), train,
                                 n_ipus=16)).samples_per_second
        assert r2 / r4 == pytest.approx(2.0, rel=0.3)

    def test_bottleneck_stage_reported(self, pod, train):
        model = decoder_block_probe(768, 12)
        run = pod.run(pod.compile(model, train, n_ipus=8,
                                  layers_per_ipu=[6, 2, 2, 2, 0]))
        assert run.meta["bottleneck_stage"] == "decoders[1]"


class TestDeployment:
    def test_near_linear_batch_scaling(self, backend):
        """Fig. 12: IPU throughput scales near-linearly with batch."""
        model = decoder_block_probe(768, 4)

        def rate(batch):
            t = TrainConfig(batch_size=batch, seq_len=1024)
            return backend.run(
                backend.compile(model, t, n_ipus=2)).tokens_per_second

        assert rate(16) / rate(8) > 1.4
        assert rate(32) / rate(8) > 1.6

    def test_mixed_precision_gain_about_25pct(self, backend):
        """Table IV: IPU full -> mixed gains ~22%."""
        model = decoder_block_probe(768, 4, vocab_size=50257)
        t = TrainConfig(batch_size=16, seq_len=1024)
        full = backend.run(backend.compile(
            model, t.with_precision(PrecisionPolicy.full()), n_ipus=2))
        mixed = backend.run(backend.compile(
            model, t.with_precision(PrecisionPolicy.mixed(Precision.FP16)),
            n_ipus=2))
        gain = mixed.tokens_per_second / full.tokens_per_second - 1.0
        assert 0.15 < gain < 0.40

    def test_tflops_in_paper_band(self, backend):
        """Fig. 9d / 10c: 91-143 TFLOP/s at useful configurations."""
        from repro.models.config import gpt2_model
        t = TrainConfig(batch_size=32, seq_len=1024)
        run = backend.run(backend.compile(gpt2_model("small").with_layers(8),
                                          t, n_ipus=2))
        assert 80e12 < run.achieved_flops < 200e12
