"""IPU pipeline compiler: layout, tiles, memory limits."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.graphcore.compiler import IPUCompiler
from repro.hardware.specs import BOW_POD
from repro.models.config import TrainConfig, gpt2_model
from repro.workloads import decoder_block_probe


@pytest.fixture(scope="module")
def compiler():
    return IPUCompiler()


@pytest.fixture(scope="module")
def pod_compiler():
    return IPUCompiler(BOW_POD)


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=32, seq_len=1024)


@pytest.fixture(scope="module")
def small():
    return gpt2_model("small")


class TestLayout:
    def test_needs_two_ipus(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, n_ipus=1)

    def test_embedding_gets_ipu_zero(self, compiler, small, train):
        report = compiler.compile(small.with_layers(4), train, n_ipus=2)
        stages = report.meta["stages"]
        assert stages[0].ipu_index == 0
        assert stages[0].n_layers == 0

    def test_small_pipelines_share_embed_and_head(self, compiler, small,
                                                  train):
        report = compiler.compile(small.with_layers(4), train, n_ipus=2)
        assert report.meta["stages"][0].name == "embed+head"

    def test_large_pipelines_shard_the_head(self, pod_compiler, train):
        model = decoder_block_probe(768, 30)
        report = pod_compiler.compile(model, train, n_ipus=16)
        names = [s.name for s in report.meta["stages"]]
        assert "embed" in names
        assert sum(1 for n in names if n.startswith("head.shard")) == 4

    def test_balanced_default_distribution(self, pod_compiler, train):
        model = decoder_block_probe(768, 12)
        report = pod_compiler.compile(model, train, n_ipus=8)
        layers = report.meta["layers_per_ipu"]
        assert sum(layers) == 12
        # Throughput depends only on the most-loaded IPU, so the default
        # layout must achieve the optimal bottleneck: ceil(12 / 5) = 3.
        assert max(layers) == 3

    def test_explicit_distribution_validated(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small.with_layers(4), train, n_ipus=2,
                             layers_per_ipu=[2, 2])  # too many entries
        with pytest.raises(ConfigurationError):
            compiler.compile(small.with_layers(4), train, n_ipus=2,
                             layers_per_ipu=[3])  # wrong sum

    def test_too_many_ipus_rejected(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, n_ipus=32)  # Bow-2000 has 16


class TestTileAllocation:
    def test_single_layer_underuses_tiles(self, compiler, train):
        """Fig. 9d: small stages engage a fraction of the 1,472 tiles."""
        report = compiler.compile(decoder_block_probe(768, 1), train,
                                  n_ipus=2)
        decoder = [s for s in report.meta["stages"] if s.n_layers == 1][0]
        assert decoder.tiles_used < 0.5 * 1472

    def test_four_layers_saturate(self, compiler, train):
        report = compiler.compile(decoder_block_probe(768, 4), train,
                                  n_ipus=2)
        decoder = [s for s in report.meta["stages"] if s.n_layers == 4][0]
        assert decoder.tiles_used == pytest.approx(1472, rel=0.01)


class TestMemoryModel:
    def test_paper_failure_at_ten_layers(self, compiler, small, train):
        """Fig. 9d: execution fails at 10 layers (~70M params)."""
        compiler.compile(small.with_layers(9), train, n_ipus=2)
        with pytest.raises(OutOfMemoryError):
            compiler.compile(small.with_layers(10), train, n_ipus=2)

    def test_max_layers_helper(self, compiler, small, train):
        assert compiler.max_layers(small, train, n_ipus=2) == 9

    def test_memory_grows_linearly_with_layers(self, compiler, small,
                                               train):
        """Fig. 9d: memory usage increases linearly with layer count."""
        mems = [compiler.compile(small.with_layers(n), train,
                                 n_ipus=2).shared_memory.total_bytes
                for n in (2, 4, 6, 8)]
        deltas = [b - a for a, b in zip(mems, mems[1:])]
        assert max(deltas) / min(deltas) < 1.2

    def test_more_ipus_unlock_more_layers(self, pod_compiler, small, train):
        assert pod_compiler.max_layers(small, train, n_ipus=8) > 9

    def test_micro_batches_affect_stash_not_failure_much(self, compiler,
                                                         small, train):
        r8 = compiler.compile(small.with_layers(6), train, n_ipus=2,
                              micro_batches=8)
        r32 = compiler.compile(small.with_layers(6), train, n_ipus=2,
                               micro_batches=32)
        # 1F1B bounds the stash by pipeline depth, not accumulation count.
        assert (r32.shared_memory.activation_bytes
                <= r8.shared_memory.activation_bytes * 1.01)


class TestReportShape:
    def test_totals_scale_with_ipus(self, pod_compiler, train):
        model = decoder_block_probe(768, 12)
        report = pod_compiler.compile(model, train, n_ipus=8)
        assert report.total_compute_units == 8 * 1472
        assert report.n_chips == 8

    def test_stage_throughputs_recorded(self, compiler, small, train):
        report = compiler.compile(small.with_layers(4), train, n_ipus=2)
        for task in report.phases[0].tasks:
            assert task.throughput > 0
