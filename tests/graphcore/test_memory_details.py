"""IPU memory-model internals: serialization, sharding, clamps."""

import pytest

from repro.graphcore.compiler import IPUCompiler, VOCAB_SERIALIZATION
from repro.hardware.specs import BOW_POD
from repro.models.config import TrainConfig, gpt2_model
from repro.workloads import decoder_block_probe


@pytest.fixture(scope="module")
def compiler():
    return IPUCompiler()


@pytest.fixture(scope="module")
def pod():
    return IPUCompiler(BOW_POD)


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=32, seq_len=1024)


class TestVocabSerialization:
    def test_embed_stage_state_serialized(self, compiler, train):
        """The embed+head stage holds only 1/N of the vocab-table state."""
        model = gpt2_model("small").with_layers(2)
        report = compiler.compile(model, train, n_ipus=2)
        embed = report.meta["stages"][0]
        from repro.models.costmodel import TransformerCostModel
        cost = TransformerCostModel(model)
        full_state = ((cost.embedding_params() + cost.final_norm_params())
                      * (train.precision.weight_bytes_per_param * 2
                         + train.precision.state_bytes_per_param))
        assert embed.weight_bytes == pytest.approx(
            full_state / VOCAB_SERIALIZATION)

    def test_decoder_stage_not_serialized(self, compiler, train):
        model = gpt2_model("small").with_layers(2)
        report = compiler.compile(model, train, n_ipus=2)
        decoder = next(s for s in report.meta["stages"] if s.n_layers == 2)
        from repro.models.costmodel import TransformerCostModel
        cost = TransformerCostModel(model)
        full_state = (2 * cost.layer_params().total
                      * (train.precision.weight_bytes_per_param * 2
                         + train.precision.state_bytes_per_param))
        assert decoder.weight_bytes == pytest.approx(full_state)


class TestHeadSharding:
    def test_shards_split_state_and_flops(self, pod, train):
        model = decoder_block_probe(768, 30, vocab_size=50257)
        report = pod.compile(model, train, n_ipus=16)
        shards = [s for s in report.meta["stages"]
                  if s.name.startswith("head.shard")]
        assert len(shards) == 4
        flops = {s.flops_per_micro for s in shards}
        assert len(flops) == 1  # equal split

    def test_stage_count_matches_layout(self, pod, train):
        model = decoder_block_probe(768, 30)
        report = pod.compile(model, train, n_ipus=16)
        # 1 embed + one stage per non-empty decoder IPU + 4 head shards.
        occupied = sum(1 for c in report.meta["layers_per_ipu"] if c > 0)
        assert len(report.meta["stages"]) == 1 + occupied + 4


class TestMicroBatchClamp:
    def test_never_more_micros_than_samples(self, compiler):
        tiny = TrainConfig(batch_size=3, seq_len=256)
        report = compiler.compile(decoder_block_probe(256, 2), tiny,
                                  n_ipus=2)
        assert report.meta["micro_batches"] <= 3

    def test_explicit_micro_batches_respected(self, compiler, train):
        report = compiler.compile(decoder_block_probe(768, 4), train,
                                  n_ipus=2, micro_batches=16)
        assert report.meta["micro_batches"] == 16
        assert report.meta["micro_size"] == 2

    def test_grad_accumulation_drives_default(self, compiler):
        train = TrainConfig(batch_size=32, seq_len=1024,
                            grad_accumulation=16)
        report = compiler.compile(decoder_block_probe(768, 4), train,
                                  n_ipus=2)
        assert report.meta["micro_batches"] == 16


class TestStashScaling:
    def test_stash_grows_with_micro_size(self, compiler):
        model = decoder_block_probe(768, 4)
        small = compiler.compile(model,
                                 TrainConfig(batch_size=16, seq_len=1024),
                                 n_ipus=2)
        big = compiler.compile(model,
                               TrainConfig(batch_size=64, seq_len=1024),
                               n_ipus=2)

        def stash(report):
            return max(s.stash_bytes for s in report.meta["stages"])

        assert stash(big) > 2 * stash(small)
