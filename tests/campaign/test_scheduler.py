"""The cost-aware scheduler: predictors, dispatch order, invariants.

The load-bearing guarantees: every schedule policy produces
byte-identical spec-ordered results and journals, resume re-executes
zero cells under every schedule, and longest-first never increases the
simulated makespan on unbalanced grids (the LPT property — proved here
both on a concrete ≥20%-reduction grid and property-based over random
single-straggler grids).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    AnalyticCostPredictor,
    Campaign,
    CampaignLane,
    CellTask,
    EWMACostPredictor,
    Scheduler,
    estimate_cell_seconds,
    make_predictor,
    simulate_makespan,
)
from repro.common.errors import ConfigurationError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    SCHEDULE_POLICIES,
    ExecutionPolicy,
    FakeClock,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    ShardedJournal,
)


def task(key, cost=None, family=""):
    return CellTask(key=key, compile_fn=lambda: None, cost_hint=cost,
                    family=family)


def dispatch_order(scheduler, costs):
    """Drain a pending list through the scheduler; return picked costs."""
    pending = list(enumerate(task(f"c{i}", cost)
                             for i, cost in enumerate(costs)))
    order = []
    while pending:
        index, picked = pending.pop(scheduler.pick(pending))
        order.append(picked.cost_hint)
        scheduler.observe(picked, picked.cost_hint)
    return order


class TestPredictors:
    def test_analytic_returns_hint(self):
        predictor = AnalyticCostPredictor()
        assert predictor.predict(task("a", 7.5)) == 7.5
        assert predictor.predict(task("a")) == 1.0  # unpriced default

    def test_ewma_starts_from_hint_then_learns(self):
        predictor = EWMACostPredictor(alpha=0.3)
        cell = task("a", cost=5.0, family="lane::gpt2")
        assert predictor.predict(cell) == 5.0
        predictor.observe(cell, 10.0)
        assert predictor.predict(cell) == 10.0
        predictor.observe(cell, 20.0)
        assert predictor.predict(cell) == pytest.approx(13.0)

    def test_ewma_is_per_family(self):
        predictor = EWMACostPredictor()
        predictor.observe(task("a", family="fast"), 1.0)
        assert predictor.predict(task("b", cost=99.0,
                                      family="fast")) == 1.0
        assert predictor.predict(task("c", cost=99.0,
                                      family="slow")) == 99.0

    def test_ewma_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            EWMACostPredictor(alpha=0.0)

    def test_make_predictor_resolves_names_and_objects(self):
        assert isinstance(make_predictor("analytic"),
                          AnalyticCostPredictor)
        assert isinstance(make_predictor("ewma"), EWMACostPredictor)
        custom = AnalyticCostPredictor()
        assert make_predictor(custom) is custom
        with pytest.raises(ConfigurationError, match="predictor"):
            make_predictor("oracle")
        with pytest.raises(ConfigurationError, match="protocol"):
            make_predictor(object())

    def test_analytic_estimate_grows_with_model(self, cerebras):
        train = TrainConfig(batch_size=8, seq_len=256)
        small = estimate_cell_seconds(cerebras, gpt2_model("mini"),
                                      train)
        large = estimate_cell_seconds(
            cerebras, gpt2_model("mini").with_layers(40), train)
        assert large > small > 0
        compile_only = estimate_cell_seconds(
            cerebras, gpt2_model("mini"), train, measure=False)
        assert compile_only < small


class TestSchedulerOrdering:
    def test_lane_major_keeps_arrival_order(self):
        order = dispatch_order(Scheduler("lane-major"), [3.0, 1.0, 2.0])
        assert order == [3.0, 1.0, 2.0]

    def test_longest_first_sorts_descending(self):
        scheduler = Scheduler("longest-first", AnalyticCostPredictor())
        assert dispatch_order(scheduler,
                              [3.0, 1.0, 2.0]) == [3.0, 2.0, 1.0]

    def test_shortest_first_sorts_ascending(self):
        scheduler = Scheduler("shortest-first", AnalyticCostPredictor())
        assert dispatch_order(scheduler,
                              [3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_ties_go_to_earliest_task(self):
        scheduler = Scheduler("longest-first", AnalyticCostPredictor())
        pending = list(enumerate([task("a", 2.0), task("b", 2.0)]))
        assert scheduler.pick(pending) == 0

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            Scheduler("random")

    def test_forecast_records_comparison_time_price(self):
        # Regression: pick() used to re-call predict(chosen) for the
        # telemetry *after* the comparison loop. A predictor whose
        # state moves between calls (EWMA learning from a concurrent
        # observe, here modelled by a drifting stub) then recorded a
        # price the decision never saw — and paid an extra predict()
        # call per pick on top.
        class DriftingPredictor:
            name = "drifting"

            def __init__(self):
                self.calls = 0

            def predict(self, task):
                self.calls += 1
                return task.cost_hint + 100.0 * self.calls

            def observe(self, task, seconds):
                pass

        predictor = DriftingPredictor()
        scheduler = Scheduler("longest-first", predictor)
        pending = list(enumerate([task("a", 1.0), task("b", 2.0)]))
        position = scheduler.pick(pending)
        # Drift dominates the hints, so the comparison picks the
        # later-priced task; the forecast must be that same price.
        assert position == 1
        assert predictor.calls == 2  # one predict per pending task
        assert scheduler._forecast["b"] == 202.0

    def test_stats_track_prediction_error(self):
        scheduler = Scheduler("longest-first", AnalyticCostPredictor())
        pending = list(enumerate([task("a", 4.0), task("b", 2.0)]))
        pending.pop(scheduler.pick(pending))
        scheduler.observe(task("a", 4.0), 5.0)
        pending.pop(scheduler.pick(pending))
        scheduler.observe(task("b", 2.0), 2.0)
        stats = scheduler.stats(max_workers=2)
        assert stats.cells == 2
        assert stats.predicted_seconds == 6.0
        assert stats.actual_seconds == 7.0
        assert stats.mean_abs_error == pytest.approx(0.5)
        assert stats.mape == pytest.approx(0.1)  # (1/5 + 0) / 2
        assert stats.makespan_seconds == 5.0
        assert stats.schedule == "longest-first"
        assert stats.predictor == "analytic"


class TestSimulateMakespan:
    def test_empty_and_single_worker(self):
        assert simulate_makespan([], 4) == 0.0
        assert simulate_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_greedy_earliest_free_worker(self):
        # 8 shorts then one straggler on 2 workers: the straggler
        # starts at t=8 — the unbalanced-grid worst case.
        assert simulate_makespan([2.0] * 8 + [24.0], 2) == 32.0
        assert simulate_makespan([24.0] + [2.0] * 8, 2) == 24.0


class TestPolicyValidation:
    def test_policy_rejects_unknown_schedule(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            ExecutionPolicy(schedule="random")

    def test_policy_rejects_unknown_predictor_name(self):
        with pytest.raises(ConfigurationError, match="predictor"):
            ExecutionPolicy(predictor="oracle")

    def test_policy_accepts_predictor_object(self):
        policy = ExecutionPolicy(schedule="longest-first",
                                 predictor=AnalyticCostPredictor())
        scheduler = policy.make_scheduler()
        assert isinstance(scheduler.predictor, AnalyticCostPredictor)
        assert scheduler.schedule == "longest-first"


# ----------------------------------------------------------------------
# Campaign-level invariants: every schedule, identical results
# ----------------------------------------------------------------------
N_SPECS = 5
LAYERS = range(2, 2 + N_SPECS)


def campaign_specs():
    from repro.workloads.sweeps import SweepSpec
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    return [SweepSpec(label=f"L{n}", model=model.with_layers(n),
                      train=train) for n in LAYERS]


def lanes_for(backends):
    return [CampaignLane(backend=b, specs=campaign_specs())
            for b in backends]


class TestScheduleInvariants:
    @pytest.mark.parametrize("schedule", SCHEDULE_POLICIES)
    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_every_schedule_matches_lane_major(self, cerebras, gpu,
                                               tmp_path, schedule,
                                               max_workers):
        baseline = Campaign(
            lanes_for([cerebras, gpu]),
            ExecutionPolicy(journal=ShardedJournal(tmp_path / "base")),
        ).run()
        result = Campaign(
            lanes_for([cerebras, gpu]),
            ExecutionPolicy(schedule=schedule, max_workers=max_workers,
                            journal=ShardedJournal(tmp_path / schedule)),
        ).run()

        assert result.labels == baseline.labels
        for label in result.labels:
            got = result.cells[label]
            want = baseline.cells[label]
            assert [c.spec.label for c in got] == \
                [f"L{n}" for n in LAYERS]
            for g, w in zip(got, want):
                assert not g.failed and not w.failed
                assert g.run.tokens_per_second == w.run.tokens_per_second
        # Byte-identical journals: same keys, same outcomes, whatever
        # order cells were dispatched in.
        assert (ShardedJournal(tmp_path / schedule).merged_text()
                == ShardedJournal(tmp_path / "base").merged_text())
        assert result.scheduling is not None
        assert result.scheduling.schedule == schedule
        assert result.scheduling.cells == 2 * N_SPECS

    @pytest.mark.parametrize("schedule", SCHEDULE_POLICIES)
    def test_resume_re_executes_zero_cells(self, cerebras, gpu,
                                           tmp_path, schedule):
        wrapped = [FaultInjectingBackend(b, FaultPlan())
                   for b in (cerebras, gpu)]
        policy = ExecutionPolicy(schedule=schedule, max_workers=3,
                                 journal=ShardedJournal(tmp_path))
        first = Campaign(lanes_for(wrapped), policy).run()
        assert first.executed_cells == 2 * N_SPECS
        calls = [dict(b.calls) for b in wrapped]

        resumed = Campaign(
            lanes_for(wrapped),
            policy.with_options(journal=ShardedJournal(tmp_path),
                                resume=True),
        ).run()
        assert resumed.executed_cells == 0
        assert resumed.resumed_cells == 2 * N_SPECS
        assert [dict(b.calls) for b in wrapped] == calls


# ----------------------------------------------------------------------
# The unbalanced-grid acceptance scenario
# ----------------------------------------------------------------------
SHORT_LAYERS = range(2, 10)  # 8 short cells, 2 injected seconds each
LONG_LAYERS = 40             # 1 straggler, 24 injected seconds
SHORT_SECONDS, LONG_SECONDS = 2.0, 24.0


def unbalanced_lane(backend):
    """One lane whose last cell is a 24s straggler among 2s cells.

    Hang durations are injected per workload key on a fake clock, so
    each cell's elapsed time is exact; the straggler is also the
    biggest model, so the analytic predictor ranks it first.
    """
    from repro.workloads.sweeps import SweepSpec
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    specs = [SweepSpec(label=f"L{n}", model=model.with_layers(n),
                       train=train) for n in SHORT_LAYERS]
    specs.append(SweepSpec(label=f"L{LONG_LAYERS}",
                           model=model.with_layers(LONG_LAYERS),
                           train=train))
    clock = FakeClock()
    plan = FaultPlan()
    for n in SHORT_LAYERS:
        plan.add(FaultSpec.hang(SHORT_SECONDS, match=f"/L{n}/",
                                phase="compile"))
    plan.add(FaultSpec.hang(LONG_SECONDS, match=f"/L{LONG_LAYERS}/",
                            phase="compile"))
    wrapped = FaultInjectingBackend(backend, plan, clock=clock)
    return CampaignLane(backend=wrapped, specs=specs, clock=clock)


def run_schedule(backend, schedule):
    """Sequential run; returns (result, dispatch-order cell labels)."""
    order = []
    result = Campaign(
        [unbalanced_lane(backend)],
        ExecutionPolicy(schedule=schedule, predictor="analytic"),
    ).run(on_cell=lambda label, cell: order.append(cell.spec.label))
    return result, order


class TestUnbalancedGridMakespan:
    def test_longest_first_cuts_makespan_at_least_20_percent(self,
                                                             cerebras):
        costs = {f"L{n}": SHORT_SECONDS for n in SHORT_LAYERS}
        costs[f"L{LONG_LAYERS}"] = LONG_SECONDS

        lane_major, arrival = run_schedule(cerebras, "lane-major")
        longest, lpt = run_schedule(cerebras, "longest-first")

        # The straggler is dispatched first under longest-first.
        assert arrival[-1] == f"L{LONG_LAYERS}"
        assert lpt[0] == f"L{LONG_LAYERS}"

        # Identical spec-ordered results under both schedules.
        label = lane_major.labels[0]
        assert longest.labels == lane_major.labels
        for g, w in zip(longest.cells[label], lane_major.cells[label]):
            assert g.spec.label == w.spec.label
            assert not g.failed and not w.failed
            assert g.run.tokens_per_second == w.run.tokens_per_second

        # Dispatching the measured costs on 2 workers: ≥20% faster.
        baseline = simulate_makespan([costs[c] for c in arrival], 2)
        improved = simulate_makespan([costs[c] for c in lpt], 2)
        assert baseline == 32.0
        assert improved == 24.0
        assert improved <= 0.8 * baseline

        # The scheduler observed the injected costs exactly and its
        # telemetry lands in the report's Scheduling table.
        stats = longest.scheduling
        assert stats.actual_seconds == pytest.approx(
            8 * SHORT_SECONDS + LONG_SECONDS)
        assert stats.cells == 9
        rendered = longest.report().render()
        assert "Scheduling" in rendered
        assert "longest-first" in rendered
        assert "analytic" in rendered

    @given(shorts=st.lists(st.floats(min_value=0.1, max_value=10.0),
                           min_size=1, max_size=12),
           workers=st.integers(min_value=2, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_lpt_never_loses_on_single_straggler_grids(self, shorts,
                                                       workers):
        # One straggler at least as long as all shorts combined — the
        # regime the unbalanced-grid claim is about. (General LPT can
        # lose to arrival order: e.g. [3,2,2,4,3] on 2 workers beats
        # sorted-descending, so the property holds on this shape only.)
        straggler = sum(shorts) + 1.0
        costs = shorts + [straggler]
        scheduler = Scheduler("longest-first", AnalyticCostPredictor())
        assert simulate_makespan(dispatch_order(scheduler, costs),
                                 workers) <= \
            simulate_makespan(costs, workers)
