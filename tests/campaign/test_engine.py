"""The pooled cell dispatcher: ordering, resume, errors, serialization."""

import threading

import pytest

from repro.campaign.engine import CellTask, run_cell_tasks
from repro.common.errors import TransientError
from repro.resilience.clock import FakeClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import (
    STATUS_FAILED,
    STATUS_OK,
    ShardedJournal,
    SweepJournal,
)
from repro.resilience.retry import RetryPolicy


def make_task(key, compile_fn, **kwargs):
    return CellTask(key=key, compile_fn=compile_fn, **kwargs)


class TestOrdering:
    def test_results_in_task_order_despite_completion_order(self):
        # Task 0 blocks until task 2 has finished, so completion order
        # is the reverse of task order; results must still be ordered.
        release = threading.Event()

        def slow_first():
            assert release.wait(10.0)
            return "first"

        def fast_last():
            release.set()
            return "last"

        tasks = [
            make_task("a", slow_first),
            make_task("b", lambda: "middle"),
            make_task("c", fast_last),
        ]
        results = run_cell_tasks(tasks, max_workers=3)
        assert [r.key for r in results] == ["a", "b", "c"]
        assert [r.outcome.compiled for r in results] == [
            "first", "middle", "last"]
        assert all(r.index == i for i, r in enumerate(results))

    def test_sequential_path_preserves_callback_order(self):
        seen = []
        tasks = [make_task(f"k{i}", lambda i=i: i) for i in range(5)]
        run_cell_tasks(tasks, max_workers=1,
                       on_result=lambda r: seen.append(r.key))
        assert seen == ["k0", "k1", "k2", "k3", "k4"]

    def test_pool_callback_fires_exactly_once_per_cell(self):
        seen = []
        lock = threading.Lock()

        def on_result(result):
            with lock:
                seen.append(result.key)

        tasks = [make_task(f"k{i}", lambda i=i: i) for i in range(8)]
        run_cell_tasks(tasks, max_workers=4, on_result=on_result)
        assert sorted(seen) == [f"k{i}" for i in range(8)]


class TestJournalAndResume:
    def test_journal_records_every_cell(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        tasks = [make_task(f"k{i}", lambda i=i: i) for i in range(3)]
        run_cell_tasks(tasks, max_workers=2, journal=journal)
        entries = journal.load()
        assert set(entries) == {"k0", "k1", "k2"}
        assert all(e.status == STATUS_OK for e in entries.values())

    def test_resume_skips_finished_cells(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        executed = []

        def build(i):
            def fn():
                executed.append(i)
                return i
            return fn

        tasks = [make_task(f"k{i}", build(i)) for i in range(4)]
        run_cell_tasks(tasks[:2], journal=journal)
        executed.clear()
        results = run_cell_tasks(tasks, journal=journal, resume=True)
        assert executed == [2, 3]
        assert [r.resumed for r in results] == [True, True, False, False]
        assert [r.key for r in results] == ["k0", "k1", "k2", "k3"]

    def test_retry_failed_reruns_journaled_failures(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")

        def boom():
            raise TransientError("flaky")

        run_cell_tasks([make_task("bad", boom)], journal=journal)
        assert journal.load()["bad"].status == STATUS_FAILED
        results = run_cell_tasks([make_task("bad", lambda: 42)],
                                 journal=journal, resume=True,
                                 retry_failed=True)
        assert not results[0].resumed
        assert results[0].outcome.compiled == 42
        assert journal.load()["bad"].status == STATUS_OK

    def test_resumed_callbacks_fire_before_pooled_results(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        tasks = [make_task(f"k{i}", lambda i=i: i) for i in range(4)]
        run_cell_tasks(tasks[:2], journal=journal)
        seen = []
        lock = threading.Lock()

        def on_result(result):
            with lock:
                seen.append(result.key)

        run_cell_tasks(tasks, max_workers=2, journal=journal,
                       resume=True, on_result=on_result)
        assert seen[:2] == ["k0", "k1"]
        assert sorted(seen[2:]) == ["k2", "k3"]

    def test_sharded_journal_backs_a_pool(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        tasks = [make_task(f"k{i}", lambda i=i: i) for i in range(6)]
        run_cell_tasks(tasks, max_workers=3, journal=journal)
        assert set(journal.load()) == {f"k{i}" for i in range(6)}
        assert 1 <= len(journal.shard_paths()) <= 3


class TestErrorPropagation:
    def test_harness_bug_re_raises_after_drain(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")

        def kill():
            raise RuntimeError("harness bug")

        tasks = [make_task("good", lambda: 1), make_task("dead", kill)]
        with pytest.raises(RuntimeError, match="harness bug"):
            run_cell_tasks(tasks, max_workers=2, journal=journal)
        # the journaled good cell survives for a resume
        assert journal.load().get("good") is not None

    def test_sequential_error_propagates(self):
        def kill():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_cell_tasks([make_task("dead", kill)], max_workers=1)


class TestExecutorWiring:
    def test_task_executor_retries_transients(self):
        clock = FakeClock()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=2, jitter=0.0), clock=clock)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("flake")
            return "done"

        results = run_cell_tasks(
            [make_task("k", flaky, executor=executor)])
        assert results[0].outcome.compiled == "done"
        assert results[0].attempts == 3

    def test_summary_extra_lands_in_journal(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")

        class FakeRun:
            tokens_per_second = 5.0
            step_time = 0.1
            achieved_flops = 1.0

        task = CellTask(
            key="k", compile_fn=lambda: "c",
            run_fn=lambda compiled: FakeRun(),
            summary_extra=lambda outcome: {"custom": 7})
        run_cell_tasks([task], journal=journal)
        assert journal.load()["k"].summary["custom"] == 7

    def test_serializer_prevents_overlapping_backend_calls(self):
        lock = threading.Lock()
        active = 0
        overlap = []

        def tracked(i):
            nonlocal active
            active += 1
            if active > 1:
                overlap.append(i)
            # widen the race window: yield to the other workers
            threading.Event().wait(0.005)
            active -= 1
            return i

        tasks = [make_task(f"k{i}", lambda i=i: tracked(i),
                           serializer=lock) for i in range(8)]
        run_cell_tasks(tasks, max_workers=4)
        assert overlap == []
