"""Unit contracts of the supervision layer (no process pools here).

The end-to-end crash/kill/quarantine behaviour lives in
``tests/integration/test_supervision.py``; these tests pin the small
pieces it is built from — heartbeat file IO, the crash fault, the
stats object, and the policy plumbing.
"""

import json
import pickle
import time

import pytest

from repro.campaign.supervisor import (
    HEARTBEAT_PREFIX,
    SupervisionStats,
    Supervisor,
    read_heartbeats,
    write_heartbeat,
)
from repro.common.errors import ConfigurationError
from repro.resilience.faults import CRASH_MODES, WorkerCrashFault
from repro.resilience.policy import ExecutionPolicy


class TestHeartbeatIO:
    def test_round_trip(self, tmp_path):
        now = time.monotonic()
        path = write_heartbeat(tmp_path, pid=123, token="tok",
                               beat=now, cell="L2", cell_started=now,
                               seq=7)
        assert path.name == f"{HEARTBEAT_PREFIX}123.json"
        beats = read_heartbeats(tmp_path, "tok")
        assert len(beats) == 1
        beat = beats[0]
        assert beat.pid == 123
        assert beat.cell == "L2"
        assert beat.seq == 7
        assert beat.beat == pytest.approx(now)

    def test_idle_worker_has_no_cell(self, tmp_path):
        write_heartbeat(tmp_path, pid=1, token="t",
                        beat=time.monotonic(), cell=None,
                        cell_started=None, seq=1)
        beat = read_heartbeats(tmp_path, "t")[0]
        assert beat.cell is None
        assert beat.cell_started is None

    def test_token_filters_other_eras(self, tmp_path):
        write_heartbeat(tmp_path, pid=1, token="old",
                        beat=0.0, cell=None, cell_started=None, seq=1)
        write_heartbeat(tmp_path, pid=2, token="new",
                        beat=0.0, cell=None, cell_started=None, seq=1)
        assert [b.pid for b in read_heartbeats(tmp_path, "new")] == [2]
        # Without a token, every era is visible.
        assert len(read_heartbeats(tmp_path)) == 2

    def test_torn_file_skipped(self, tmp_path):
        (tmp_path / f"{HEARTBEAT_PREFIX}9.json").write_text(
            '{"pid": 9, "tok')
        write_heartbeat(tmp_path, pid=1, token="t",
                        beat=0.0, cell=None, cell_started=None, seq=1)
        assert [b.pid for b in read_heartbeats(tmp_path, "t")] == [1]

    def test_non_heartbeat_files_ignored(self, tmp_path):
        (tmp_path / "shard-0000-000.jsonl").write_text(
            json.dumps({"pid": 5}) + "\n")
        assert read_heartbeats(tmp_path) == []

    def test_missing_directory_is_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "nope") == []

    def test_rewrite_replaces_not_appends(self, tmp_path):
        for seq in (1, 2, 3):
            write_heartbeat(tmp_path, pid=1, token="t", beat=float(seq),
                            cell=None, cell_started=None, seq=seq)
        beats = read_heartbeats(tmp_path, "t")
        assert len(beats) == 1
        assert beats[0].seq == 3


class TestSupervisionStats:
    def test_defaults_are_quiet(self):
        stats = Supervisor().stats()
        assert stats == SupervisionStats()
        assert stats.kills == 0
        assert stats.quarantined == ()

    def test_kills_sums_both_causes(self):
        stats = SupervisionStats(deadline_kills=2, stale_kills=3)
        assert stats.kills == 5

    def test_policy_builds_configured_supervisor(self):
        policy = ExecutionPolicy(deadline=10.0, heartbeat_interval=1.5,
                                 grace_factor=3.0, quarantine_after=4,
                                 max_pool_rebuilds=9)
        supervisor = policy.make_supervisor()
        assert supervisor.deadline == 10.0
        stats = supervisor.stats()
        assert stats.heartbeat_interval == 1.5
        assert stats.grace_factor == 3.0
        assert stats.quarantine_after == 4
        assert stats.max_pool_rebuilds == 9


class TestPolicyValidation:
    @pytest.mark.parametrize("field, value", [
        ("heartbeat_interval", 0.0),
        ("heartbeat_interval", -1.0),
        ("grace_factor", 0.5),
        ("quarantine_after", 0),
        ("quarantine_after", -2),
        ("max_pool_rebuilds", -1),
    ])
    def test_bad_supervision_fields_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**{field: value})

    def test_grace_factor_of_one_is_legal(self):
        assert ExecutionPolicy(grace_factor=1.0).grace_factor == 1.0


class TestWorkerCrashFault:
    def test_modes_are_closed_set(self):
        assert set(CRASH_MODES) == {"sigkill", "exit", "stop"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerCrashFault(mode="segfault")

    def test_refuses_to_fire_in_main_process(self, tmp_path):
        # Guard: firing here would SIGKILL the test runner itself.
        fault = WorkerCrashFault(mode="sigkill")
        with pytest.raises(ConfigurationError):
            fault()

    def test_pickles_for_process_dispatch(self):
        fault = WorkerCrashFault(mode="exit", exit_code=3,
                                 once_path="/tmp/marker")
        clone = pickle.loads(pickle.dumps(fault))
        assert clone == fault

    def test_fault_name_attribute_names_without_firing(self):
        # FaultPlan.draw logs the fault name; calling the factory to
        # learn it would crash the worker during draw().
        assert WorkerCrashFault().fault_name == "WorkerCrash"
