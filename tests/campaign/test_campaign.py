"""The Campaign object: lanes, labels, stats, reports, serialization."""

import json

import pytest

from repro.campaign import Campaign
from repro.common.errors import ConfigurationError
from repro.core.serialize import campaign_to_dict, to_json
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import CircuitBreaker, ExecutionPolicy
from repro.workloads.sweeps import SweepCell, SweepSpec


def specs_for(layers):
    train = TrainConfig(batch_size=8, seq_len=256)
    return [SweepSpec(label=f"L{n}",
                      model=gpt2_model("mini").with_layers(n),
                      train=train) for n in layers]


class TestCampaignConstruction:
    def test_bare_tuples_become_lanes(self, cerebras, gpu):
        campaign = Campaign([(cerebras, specs_for([2])),
                             (gpu, specs_for([2]))])
        assert [lane.label for lane in campaign.lanes] == \
            [cerebras.name, gpu.name]

    def test_duplicate_labels_deduplicated(self, cerebras):
        campaign = Campaign([(cerebras, specs_for([2])),
                             (cerebras, specs_for([4]))])
        labels = [lane.label for lane in campaign.lanes]
        assert labels == [cerebras.name, f"{cerebras.name}#2"]

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one lane"):
            Campaign([])

    def test_shared_breaker_rejected_for_multiple_lanes(self, cerebras,
                                                        gpu):
        policy = ExecutionPolicy(breaker=CircuitBreaker("shared"))
        with pytest.raises(ConfigurationError, match="shared"):
            Campaign([(cerebras, specs_for([2])),
                      (gpu, specs_for([2]))], policy)
        # A single lane may own a prebuilt breaker.
        Campaign([(cerebras, specs_for([2]))], policy)


class TestCampaignRun:
    def test_compile_only_campaign(self, cerebras):
        result = Campaign([(cerebras, specs_for([2, 4]))],
                          measure=False).run()
        cells = result.cells[cerebras.name]
        assert all(not c.failed and c.run is None for c in cells)

    def test_on_cell_receives_label_and_cell(self, cerebras, gpu):
        seen = []
        Campaign([(cerebras, specs_for([2])), (gpu, specs_for([2]))]).run(
            on_cell=lambda label, cell: seen.append((label, cell)))
        assert sorted(label for label, _ in seen) == \
            sorted([cerebras.name, gpu.name])
        assert all(isinstance(cell, SweepCell) for _, cell in seen)

    def test_stats_count_failures(self, cerebras):
        # L90 exceeds the wafer: a failed cell, counted as such.
        result = Campaign([(cerebras, specs_for([2, 90]))]).run()
        stats = result.stats[cerebras.name]
        assert (stats.cells, stats.ok, stats.failed) == (2, 1, 1)
        assert stats.executed == 2
        assert stats.breaker["trip_count"] == 0

    def test_report_has_one_table_per_lane(self, cerebras, gpu):
        result = Campaign([(cerebras, specs_for([2])),
                           (gpu, specs_for([2]))]).run()
        rendered = result.report().render()
        assert f"Grid on {cerebras.name}" in rendered
        assert f"Grid on {gpu.name}" in rendered
        assert "Infrastructure health" in rendered
        assert "Insight:" in rendered


class TestCampaignSerialization:
    def test_round_trips_through_json(self, cerebras, tmp_path):
        policy = ExecutionPolicy(max_workers=2,
                                 journal=tmp_path / "j.jsonl")
        result = Campaign([(cerebras, specs_for([2, 90]))], policy).run()
        payload = json.loads(to_json(campaign_to_dict(result)))
        assert payload["total_cells"] == 2
        assert payload["executed_cells"] == 2
        assert payload["policy"]["max_workers"] == 2
        assert payload["policy"]["journal"] == str(tmp_path / "j.jsonl")
        lane = payload["lanes"][0]
        assert lane["label"] == cerebras.name
        assert lane["stats"]["failed"] == 1
        assert "trip_count" in lane["stats"]["breaker"]
        assert len(lane["cells"]) == 2
