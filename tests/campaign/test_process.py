"""Process dispatch units: pickling, the worker harness, and policy
validation (the integration invariants live in
``tests/integration/test_process_dispatch.py``)."""

import pickle

import pytest

from repro.campaign import CellSpec, WorkerSpec, run_cell_specs
from repro.campaign.process import (
    CampaignWorker,
    check_process_policy,
)
from repro.common.errors import ConfigurationError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    CircuitBreaker,
    ExecutionPolicy,
    FakeClock,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    ShardedJournal,
    SweepJournal,
    compiler_flake,
)
from repro.workloads.reference import CpuBoundBackend


def cell(key="c0", lane="ref", n_layers=2, **kwargs):
    return CellSpec(key=key, lane=lane,
                    model=gpt2_model("mini").with_layers(n_layers),
                    train=TrainConfig(batch_size=4, seq_len=64),
                    **kwargs)


def worker_spec(tmp_path=None, **kwargs):
    kwargs.setdefault("backends",
                      {"ref": CpuBoundBackend(spins_per_layer=10)})
    if tmp_path is not None:
        kwargs.setdefault("journal_dir", str(tmp_path))
    return WorkerSpec(**kwargs)


class TestPickling:
    def test_cell_spec_round_trips(self):
        spec = cell(cost_hint=3.0, family="ref::gpt2")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_worker_spec_round_trips(self, tmp_path):
        spec = worker_spec(tmp_path)
        back = pickle.loads(pickle.dumps(spec))
        assert back.journal_dir == str(tmp_path)
        assert set(back.backends) == {"ref"}

    def test_every_simulator_backend_pickles(self):
        from repro import (
            CerebrasBackend,
            GPUBackend,
            GraphcoreBackend,
            SambaNovaBackend,
        )
        for backend in (CerebrasBackend(), SambaNovaBackend(),
                        GraphcoreBackend(), GPUBackend()):
            clone = pickle.loads(pickle.dumps(backend))
            assert clone.name == backend.name

    def test_fault_plan_round_trips_with_fresh_lock(self):
        plan = FaultPlan.chaos(0.5, seed=7, platform="gpu")
        plan.draw("warmup", "compile")  # advance RNG + counters
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed
        assert len(clone.specs) == len(plan.specs)
        # the rebuilt lock works — a draw must not deadlock or raise
        clone.draw("k", "compile")
        assert clone._lock is not plan._lock

    def test_fault_injecting_backend_round_trips(self):
        wrapped = FaultInjectingBackend(
            CpuBoundBackend(spins_per_layer=10),
            FaultPlan(specs=[FaultSpec(fault=compiler_flake)]))
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone.name == wrapped.name
        assert len(clone.plan.specs) == 1

    def test_unpicklable_seed_is_a_config_error(self, tmp_path):
        backend = CpuBoundBackend(spins_per_layer=10)
        backend.hook = lambda: None  # closures cannot cross processes
        spec = worker_spec(backends={"ref": backend})
        with pytest.raises(ConfigurationError, match="picklable"):
            run_cell_specs([cell()], worker=spec, max_workers=2)


class TestCampaignWorker:
    def test_executes_and_journals_into_own_shard(self, tmp_path):
        worker = CampaignWorker(worker_spec(tmp_path))
        result = worker.execute(0, cell())
        assert result.status == "ok"
        assert result.outcome.run is not None
        shards = ShardedJournal(tmp_path).shard_paths()
        assert len(shards) == 1
        assert set(ShardedJournal(tmp_path).load()) == {"c0"}

    def test_compile_only_cells_skip_run(self, tmp_path):
        worker = CampaignWorker(worker_spec(tmp_path))
        result = worker.execute(0, cell(measure=False))
        assert result.status == "ok"
        assert result.outcome.run is None

    def test_no_journal_dir_means_unjournaled(self):
        worker = CampaignWorker(worker_spec())
        assert worker.journal is None
        assert worker.execute(0, cell()).entry is None

    def test_one_executor_with_breaker_per_lane(self):
        spec = worker_spec(backends={
            "a": CpuBoundBackend(spins_per_layer=10),
            "b": CpuBoundBackend(spins_per_layer=10)})
        worker = CampaignWorker(spec)
        assert set(worker.executors) == {"a", "b"}
        assert worker.executors["a"].breaker is not None
        assert worker.executors["a"].breaker.name == "a"
        assert (worker.executors["a"].breaker
                is not worker.executors["b"].breaker)

    def test_breakers_flag_off_builds_none(self):
        worker = CampaignWorker(worker_spec(breakers=False))
        assert worker.executors["ref"].breaker is None


class TestCheckProcessPolicy:
    def test_accepts_sharded_or_no_journal(self, tmp_path):
        policy = ExecutionPolicy(dispatch="process")
        check_process_policy(policy, None, api="t")
        check_process_policy(policy, ShardedJournal(tmp_path), api="t")

    def test_rejects_single_file_journal(self, tmp_path):
        with pytest.raises(ConfigurationError, match="ShardedJournal"):
            check_process_policy(ExecutionPolicy(dispatch="process"),
                                 SweepJournal(tmp_path / "j.jsonl"),
                                 api="t")

    def test_rejects_injected_clock(self):
        with pytest.raises(ConfigurationError, match="clock"):
            check_process_policy(
                ExecutionPolicy(dispatch="process", clock=FakeClock()),
                None, api="t")
        with pytest.raises(ConfigurationError, match="clock"):
            check_process_policy(ExecutionPolicy(dispatch="process"),
                                 None, api="t", injected_clock=True)

    def test_rejects_prebuilt_executor_and_breaker(self):
        with pytest.raises(ConfigurationError, match="executor"):
            check_process_policy(
                ExecutionPolicy(dispatch="process",
                                executor=ResilientExecutor()),
                None, api="t")
        with pytest.raises(ConfigurationError, match="CircuitBreaker"):
            check_process_policy(
                ExecutionPolicy(dispatch="process",
                                breaker=CircuitBreaker("x")),
                None, api="t")


class TestPolicyDispatchField:
    def test_defaults_to_thread(self):
        assert ExecutionPolicy().dispatch == "thread"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="dispatch"):
            ExecutionPolicy(dispatch="fiber")

    def test_serializes(self):
        from repro.core.serialize import execution_policy_to_dict
        payload = execution_policy_to_dict(
            ExecutionPolicy(dispatch="process"))
        assert payload["dispatch"] == "process"
