"""Injectable clocks."""

import pytest

from repro.common.errors import SimulationError
from repro.resilience.clock import FakeClock, SystemClock


class TestFakeClock:
    def test_starts_at_zero(self):
        assert FakeClock().now() == 0.0

    def test_sleep_advances_instantly(self):
        clock = FakeClock()
        clock.sleep(30.0)
        assert clock.now() == 30.0

    def test_sleeps_are_recorded(self):
        clock = FakeClock()
        clock.sleep(1.0)
        clock.sleep(2.5)
        assert clock.sleeps == [1.0, 2.5]

    def test_advance_moves_without_recording(self):
        clock = FakeClock(start=10.0)
        clock.advance(5.0)
        assert clock.now() == 15.0
        assert clock.sleeps == []

    def test_negative_rejected(self):
        clock = FakeClock()
        with pytest.raises(SimulationError):
            clock.sleep(-1.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)

    def test_not_real(self):
        assert not FakeClock().is_real


class TestSystemClock:
    def test_is_real_and_monotone(self):
        clock = SystemClock()
        assert clock.is_real
        first = clock.now()
        clock.sleep(0.0)  # zero sleep must not block
        assert clock.now() >= first
