"""ExecutionPolicy and the deprecated-keyword resolution."""

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import FakeClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import ShardedJournal, SweepJournal
from repro.resilience.policy import (
    NO_RETRY,
    ExecutionPolicy,
    resolve_policy,
)
from repro.resilience.retry import RetryPolicy


class TestExecutionPolicy:
    def test_defaults_match_pre_policy_harness(self):
        policy = ExecutionPolicy()
        assert policy.retry is NO_RETRY
        assert policy.deadline is None
        assert policy.journal is None
        assert not policy.resume
        assert not policy.retry_failed
        assert policy.max_workers == 1
        assert policy.breaker is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_workers=0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(deadline=0.0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(breaker_reset=-1.0)

    def test_normalized_journal_wraps_paths(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ExecutionPolicy(journal=path).normalized_journal()
        assert isinstance(journal, SweepJournal)
        assert journal.path == path
        sharded = ShardedJournal(tmp_path / "shards")
        assert (ExecutionPolicy(journal=sharded).normalized_journal()
                is sharded)
        assert ExecutionPolicy().normalized_journal() is None

    def test_make_breaker_modes(self):
        assert ExecutionPolicy().make_breaker("wse") is None
        built = ExecutionPolicy(breaker=True, breaker_threshold=2,
                                breaker_reset=10.0).make_breaker("wse")
        assert built.failure_threshold == 2
        assert built.reset_timeout == 10.0
        assert built.name == "wse"
        ready = CircuitBreaker("mine")
        assert ExecutionPolicy(breaker=ready).make_breaker("wse") is ready

    def test_new_breaker_always_fresh(self):
        policy = ExecutionPolicy(breaker_threshold=3)
        a = policy.new_breaker("a")
        b = policy.new_breaker("b")
        assert a is not b
        assert a.failure_threshold == 3

    def test_make_executor_from_fields(self):
        clock = FakeClock()
        retry = RetryPolicy(max_retries=2)
        policy = ExecutionPolicy(retry=retry, deadline=60.0, clock=clock)
        executor = policy.make_executor("wse")
        assert executor.retry is retry
        assert executor.cell_timeout == 60.0
        assert executor.clock is clock
        assert executor.breaker is None

    def test_make_executor_reuses_prebuilt(self):
        prebuilt = ResilientExecutor(retry=RetryPolicy(max_retries=7))
        policy = ExecutionPolicy(executor=prebuilt)
        assert policy.make_executor("wse") is prebuilt

    def test_make_executor_rewraps_for_breaker(self):
        prebuilt = ResilientExecutor(retry=RetryPolicy(max_retries=7),
                                     cell_timeout=5.0)
        policy = ExecutionPolicy(executor=prebuilt)
        breaker = CircuitBreaker("lane")
        wrapped = policy.make_executor("lane", breaker=breaker)
        assert wrapped is not prebuilt
        assert wrapped.breaker is breaker
        assert wrapped.retry is prebuilt.retry
        assert wrapped.cell_timeout == 5.0

    def test_with_options(self):
        policy = ExecutionPolicy(max_workers=2)
        wider = policy.with_options(max_workers=8, resume=True)
        assert wider.max_workers == 8
        assert wider.resume
        assert policy.max_workers == 2  # frozen original untouched


class TestResolvePolicy:
    def test_no_arguments_yields_default(self):
        policy = resolve_policy(None, api="f")
        assert policy == ExecutionPolicy()

    def test_policy_passes_through(self):
        policy = ExecutionPolicy(max_workers=4)
        assert resolve_policy(policy, api="f") is policy

    def test_legacy_keywords_warn_and_translate(self, tmp_path):
        with pytest.warns(DeprecationWarning,
                          match="f: the journal, resume keyword"):
            policy = resolve_policy(None, api="f",
                                    journal=tmp_path / "j.jsonl",
                                    resume=True)
        assert policy.resume
        assert policy.journal == tmp_path / "j.jsonl"

    def test_legacy_executor_lands_on_policy(self):
        executor = ResilientExecutor()
        with pytest.warns(DeprecationWarning, match="executor"):
            policy = resolve_policy(None, api="f", executor=executor)
        assert policy.executor is executor
        assert policy.make_executor("x") is executor

    def test_mixing_policy_and_legacy_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            resolve_policy(ExecutionPolicy(), api="f", resume=True)

    def test_explicit_false_still_counts_as_legacy(self):
        # Passing the old keyword at all is deprecated, even with its
        # old default value: None is the only "not passed" sentinel.
        with pytest.warns(DeprecationWarning):
            policy = resolve_policy(None, api="f", resume=False)
        assert not policy.resume
