"""ExecutionPolicy and the removed-keyword rejection."""

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import FakeClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import ShardedJournal, SweepJournal
from repro.resilience.policy import (
    NO_RETRY,
    REMOVED_KEYWORDS,
    ExecutionPolicy,
    reject_removed_kwargs,
)
from repro.resilience.retry import RetryPolicy


class TestExecutionPolicy:
    def test_defaults_match_pre_policy_harness(self):
        policy = ExecutionPolicy()
        assert policy.retry is NO_RETRY
        assert policy.deadline is None
        assert policy.journal is None
        assert not policy.resume
        assert not policy.retry_failed
        assert policy.max_workers == 1
        assert policy.breaker is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_workers=0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(deadline=0.0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(breaker_reset=-1.0)

    def test_normalized_journal_wraps_paths(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ExecutionPolicy(journal=path).normalized_journal()
        assert isinstance(journal, SweepJournal)
        assert journal.path == path
        sharded = ShardedJournal(tmp_path / "shards")
        assert (ExecutionPolicy(journal=sharded).normalized_journal()
                is sharded)
        assert ExecutionPolicy().normalized_journal() is None

    def test_make_breaker_modes(self):
        assert ExecutionPolicy().make_breaker("wse") is None
        built = ExecutionPolicy(breaker=True, breaker_threshold=2,
                                breaker_reset=10.0).make_breaker("wse")
        assert built.failure_threshold == 2
        assert built.reset_timeout == 10.0
        assert built.name == "wse"
        ready = CircuitBreaker("mine")
        assert ExecutionPolicy(breaker=ready).make_breaker("wse") is ready

    def test_new_breaker_always_fresh(self):
        policy = ExecutionPolicy(breaker_threshold=3)
        a = policy.new_breaker("a")
        b = policy.new_breaker("b")
        assert a is not b
        assert a.failure_threshold == 3

    def test_make_executor_from_fields(self):
        clock = FakeClock()
        retry = RetryPolicy(max_retries=2)
        policy = ExecutionPolicy(retry=retry, deadline=60.0, clock=clock)
        executor = policy.make_executor("wse")
        assert executor.retry is retry
        assert executor.cell_timeout == 60.0
        assert executor.clock is clock
        assert executor.breaker is None

    def test_make_executor_reuses_prebuilt(self):
        prebuilt = ResilientExecutor(retry=RetryPolicy(max_retries=7))
        policy = ExecutionPolicy(executor=prebuilt)
        assert policy.make_executor("wse") is prebuilt

    def test_make_executor_rewraps_for_breaker(self):
        prebuilt = ResilientExecutor(retry=RetryPolicy(max_retries=7),
                                     cell_timeout=5.0)
        policy = ExecutionPolicy(executor=prebuilt)
        breaker = CircuitBreaker("lane")
        wrapped = policy.make_executor("lane", breaker=breaker)
        assert wrapped is not prebuilt
        assert wrapped.breaker is breaker
        assert wrapped.retry is prebuilt.retry
        assert wrapped.cell_timeout == 5.0

    def test_with_options(self):
        policy = ExecutionPolicy(max_workers=2)
        wider = policy.with_options(max_workers=8, resume=True)
        assert wider.max_workers == 8
        assert wider.resume
        assert policy.max_workers == 2  # frozen original untouched


class TestObservabilityFields:
    def test_trace_off_by_default(self):
        policy = ExecutionPolicy()
        assert policy.trace is False
        assert policy.trace_directory() is None
        assert policy.make_tracer() is None
        assert policy.normalized_ledger() is None

    def test_trace_true_requires_sharded_journal(self, tmp_path):
        with pytest.raises(ConfigurationError, match="ShardedJournal"):
            ExecutionPolicy(trace=True)
        with pytest.raises(ConfigurationError, match="ShardedJournal"):
            ExecutionPolicy(trace=True, journal=tmp_path / "j.jsonl")
        journal = ShardedJournal(tmp_path / "shards")
        policy = ExecutionPolicy(trace=True, journal=journal)
        assert policy.trace_directory() == journal.directory

    def test_trace_path_is_explicit_directory(self, tmp_path):
        policy = ExecutionPolicy(trace=tmp_path / "traces")
        assert policy.trace_directory() == tmp_path / "traces"
        tracer = policy.make_tracer(run="feed0000")
        assert tracer is not None
        assert tracer.run == "feed0000"

    def test_normalized_ledger_wraps_paths(self, tmp_path):
        from repro.observe import RunLedger

        path = tmp_path / "ledger.json"
        ledger = ExecutionPolicy(ledger=path).normalized_ledger()
        assert isinstance(ledger, RunLedger)
        assert ledger.path == path
        ready = RunLedger(tmp_path / "other.json")
        assert ExecutionPolicy(ledger=ready).normalized_ledger() is ready

    def test_ledger_defaults_into_cache_directory(self, tmp_path):
        from repro.cache import CompileCache
        from repro.observe import RunLedger

        # A cache directory without an explicit ledger carries one:
        # warm re-runs then feed the adaptive heartbeat for free.
        ledger = ExecutionPolicy(cache=tmp_path / "cc").normalized_ledger()
        assert isinstance(ledger, RunLedger)
        assert ledger.path == tmp_path / "cc" / "ledger.json"
        prebuilt = ExecutionPolicy(cache=CompileCache(tmp_path / "cc"))
        assert (prebuilt.normalized_ledger().path
                == tmp_path / "cc" / "ledger.json")
        # An explicit ledger still wins over the cache default.
        explicit = ExecutionPolicy(cache=tmp_path / "cc",
                                   ledger=tmp_path / "elsewhere.json")
        assert (explicit.normalized_ledger().path
                == tmp_path / "elsewhere.json")

    def test_heartbeat_adapts_to_ledger_history(self, tmp_path):
        from repro.observe import RunLedger

        ledger = RunLedger(tmp_path / "ledger.json")
        policy = ExecutionPolicy(heartbeat_interval=5.0, ledger=ledger)
        # No history: the configured interval stands.
        assert policy.effective_heartbeat_interval() == 5.0
        # Fast cells pull the cadence down, floored at interval/10.
        ledger.record("f", 0.01)
        assert policy.effective_heartbeat_interval() == 0.5
        # Typical * 2 in the adaptive band.
        ledger2 = RunLedger(tmp_path / "l2.json")
        ledger2.record("f", 1.0)
        assert policy.effective_heartbeat_interval(ledger2) == 2.0
        # Slow cells never push past the configured upper bound.
        ledger3 = RunLedger(tmp_path / "l3.json")
        ledger3.record("f", 60.0)
        assert policy.effective_heartbeat_interval(ledger3) == 5.0

    def test_no_ledger_keeps_configured_heartbeat(self):
        assert ExecutionPolicy(
            heartbeat_interval=7.0).effective_heartbeat_interval() == 7.0


class TestRejectRemovedKwargs:
    def test_no_keywords_is_a_no_op(self):
        reject_removed_kwargs("f", {})

    def test_removed_keywords_raise_with_migration_hint(self, tmp_path):
        with pytest.raises(TypeError,
                           match=r"f: the journal, resume keyword\(s\) "
                                 r"were removed in 0\.3"):
            reject_removed_kwargs(
                "f", {"journal": tmp_path / "j.jsonl", "resume": True})

    def test_hint_points_at_execution_policy(self):
        with pytest.raises(TypeError,
                           match=r"policy=ExecutionPolicy\(\.\.\.\)"):
            reject_removed_kwargs("f", {"executor": object()})

    def test_every_removed_name_is_rejected(self):
        for name in REMOVED_KEYWORDS:
            with pytest.raises(TypeError, match=name):
                reject_removed_kwargs("f", {name: None})

    def test_unknown_keywords_raise_without_allow_extra(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            reject_removed_kwargs("f", {"typo": 1})

    def test_allow_extra_passes_unknown_but_not_removed(self):
        reject_removed_kwargs("f", {"mode": "O1"}, allow_extra=True)
        with pytest.raises(TypeError, match="removed in 0.3"):
            reject_removed_kwargs("f", {"mode": "O1", "resume": True},
                                  allow_extra=True)

    def test_explicit_old_default_still_raises(self):
        # Passing the old keyword at all is an error, even with its
        # old default value — there is no sentinel pass-through.
        with pytest.raises(TypeError):
            reject_removed_kwargs("f", {"resume": False})
