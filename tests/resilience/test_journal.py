"""The JSONL checkpoint/resume journal."""

import json

from repro.common.errors import ErrorRecord, OutOfMemoryError
from repro.resilience.journal import (
    STATUS_FAILED,
    STATUS_GATED,
    STATUS_OK,
    JournalEntry,
    SweepJournal,
)


def oom_record():
    exc = OutOfMemoryError("too big", required_bytes=2e9,
                           available_bytes=1e9)
    return ErrorRecord.from_exception(exc, phase="compile")


class TestJournalEntry:
    def test_round_trip(self):
        entry = JournalEntry(key="L7", status=STATUS_FAILED, attempts=3,
                             error=oom_record())
        back = JournalEntry.from_dict(entry.to_dict())
        assert back == entry
        assert back.error.attrs["required_bytes"] == 2e9

    def test_statuses(self):
        assert JournalEntry("k", STATUS_OK).finished
        assert JournalEntry("k", STATUS_FAILED).finished
        assert JournalEntry("k", STATUS_FAILED).failed
        assert not JournalEntry("k", STATUS_GATED).finished


class TestSweepJournal:
    def test_record_and_load(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_OK,
                                    summary={"tokens_per_second": 10.0}))
        journal.record(JournalEntry("b", STATUS_FAILED,
                                    error=oom_record()))
        entries = journal.load()
        assert set(entries) == {"a", "b"}
        assert entries["a"].summary == {"tokens_per_second": 10.0}
        assert entries["b"].error.type == "OutOfMemoryError"

    def test_last_entry_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_FAILED,
                                    error=oom_record()))
        journal.record(JournalEntry("a", STATUS_OK))
        assert journal.load()["a"].status == STATUS_OK

    def test_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "nope.jsonl").load() == {}

    def test_truncated_last_line_survives(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record(JournalEntry("a", STATUS_OK))
        # simulate a crash mid-append
        with path.open("a") as handle:
            handle.write('{"v": 1, "key": "b", "stat')
        entries = journal.load()
        assert set(entries) == {"a"}

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n'
                        + json.dumps(JournalEntry("a", STATUS_OK).to_dict())
                        + '\n[1, 2, 3]\n')
        assert set(SweepJournal(path).load()) == {"a"}

    def test_finished_keys_retry_failed(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("ok", STATUS_OK))
        journal.record(JournalEntry("bad", STATUS_FAILED,
                                    error=oom_record()))
        journal.record(JournalEntry("gated", STATUS_GATED))
        assert journal.finished_keys() == {"ok", "bad"}
        assert journal.finished_keys(retry_failed=True) == {"ok"}

    def test_creates_parent_dirs(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "dir" / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_OK))
        assert set(journal.load()) == {"a"}
