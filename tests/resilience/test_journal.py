"""The JSONL checkpoint/resume journals (single-file and sharded)."""

import json
import threading
import warnings

import pytest

from repro.common.errors import ErrorRecord, OutOfMemoryError
from repro.resilience.journal import (
    STATUS_FAILED,
    STATUS_GATED,
    STATUS_OK,
    JournalEntry,
    ShardedJournal,
    SweepJournal,
)


def oom_record():
    exc = OutOfMemoryError("too big", required_bytes=2e9,
                           available_bytes=1e9)
    return ErrorRecord.from_exception(exc, phase="compile")


class TestJournalEntry:
    def test_round_trip(self):
        entry = JournalEntry(key="L7", status=STATUS_FAILED, attempts=3,
                             error=oom_record())
        back = JournalEntry.from_dict(entry.to_dict())
        assert back == entry
        assert back.error.attrs["required_bytes"] == 2e9

    def test_statuses(self):
        assert JournalEntry("k", STATUS_OK).finished
        assert JournalEntry("k", STATUS_FAILED).finished
        assert JournalEntry("k", STATUS_FAILED).failed
        assert not JournalEntry("k", STATUS_GATED).finished


class TestSweepJournal:
    def test_record_and_load(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_OK,
                                    summary={"tokens_per_second": 10.0}))
        journal.record(JournalEntry("b", STATUS_FAILED,
                                    error=oom_record()))
        entries = journal.load()
        assert set(entries) == {"a", "b"}
        assert entries["a"].summary == {"tokens_per_second": 10.0}
        assert entries["b"].error.type == "OutOfMemoryError"

    def test_last_entry_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_FAILED,
                                    error=oom_record()))
        journal.record(JournalEntry("a", STATUS_OK))
        assert journal.load()["a"].status == STATUS_OK

    def test_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "nope.jsonl").load() == {}

    def test_truncated_last_line_survives(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record(JournalEntry("a", STATUS_OK))
        # simulate a crash mid-append
        with path.open("a") as handle:
            handle.write('{"v": 1, "key": "b", "stat')
        entries = journal.load()
        assert set(entries) == {"a"}

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n'
                        + json.dumps(JournalEntry("a", STATUS_OK).to_dict())
                        + '\n[1, 2, 3]\n')
        assert set(SweepJournal(path).load()) == {"a"}

    def test_finished_keys_retry_failed(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record(JournalEntry("ok", STATUS_OK))
        journal.record(JournalEntry("bad", STATUS_FAILED,
                                    error=oom_record()))
        journal.record(JournalEntry("gated", STATUS_GATED))
        assert journal.finished_keys() == {"ok", "bad"}
        assert journal.finished_keys(retry_failed=True) == {"ok"}

    def test_creates_parent_dirs(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "dir" / "j.jsonl")
        journal.record(JournalEntry("a", STATUS_OK))
        assert set(journal.load()) == {"a"}


class TestShardedJournal:
    def test_one_shard_per_writer_thread(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        barrier = threading.Barrier(3)

        def write(n):
            barrier.wait()
            journal.record(JournalEntry(f"cell-{n}", STATUS_OK))

        threads = [threading.Thread(target=write, args=(n,))
                   for n in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(journal.shard_paths()) == 3
        assert set(journal.load()) == {"cell-0", "cell-1", "cell-2"}

    def test_same_thread_reuses_its_shard(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("a", STATUS_OK))
        journal.record(JournalEntry("b", STATUS_OK))
        assert len(journal.shard_paths()) == 1

    def test_generations_increment_per_instance(self, tmp_path):
        first = ShardedJournal(tmp_path)
        first.record(JournalEntry("a", STATUS_FAILED, error=oom_record()))
        second = ShardedJournal(tmp_path)
        second.record(JournalEntry("b", STATUS_OK))
        names = [p.name for p in second.shard_paths()]
        assert names == ["shard-0000-000.jsonl", "shard-0001-000.jsonl"]

    def test_later_generation_wins_per_key(self, tmp_path):
        first = ShardedJournal(tmp_path)
        first.record(JournalEntry("a", STATUS_FAILED, error=oom_record()))
        second = ShardedJournal(tmp_path)
        second.record(JournalEntry("a", STATUS_OK))
        assert second.load()["a"].status == STATUS_OK
        # a third instance reading cold sees the same merge
        assert ShardedJournal(tmp_path).load()["a"].status == STATUS_OK

    def test_finished_keys_merges_shards(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("ok", STATUS_OK))
        journal.record(JournalEntry("bad", STATUS_FAILED,
                                    error=oom_record()))
        journal.record(JournalEntry("gated", STATUS_GATED))
        assert journal.finished_keys() == {"ok", "bad"}
        assert journal.finished_keys(retry_failed=True) == {"ok"}

    def test_merged_text_is_canonical(self, tmp_path):
        left = ShardedJournal(tmp_path / "left")
        right = ShardedJournal(tmp_path / "right")
        # same outcomes, opposite insertion order and different shards
        left.record(JournalEntry("a", STATUS_OK))
        left.record(JournalEntry("b", STATUS_OK))
        thread = threading.Thread(
            target=lambda: right.record(JournalEntry("b", STATUS_OK)))
        thread.start()
        thread.join()
        right.record(JournalEntry("a", STATUS_OK))
        assert left.merged_text() == right.merged_text()

    def test_write_merged(self, tmp_path):
        journal = ShardedJournal(tmp_path / "shards")
        journal.record(JournalEntry("a", STATUS_OK))
        target = journal.write_merged(tmp_path / "merged.jsonl")
        merged = SweepJournal(target).load()
        assert set(merged) == {"a"}

    def test_truncated_shard_line_survives(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("a", STATUS_OK))
        with journal.shard_paths()[0].open("a") as handle:
            handle.write('{"v": 1, "key": "b", "stat')
        assert set(ShardedJournal(tmp_path).load()) == {"a"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert ShardedJournal(tmp_path / "nope").load() == {}

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello\n")
        (tmp_path / "shard-bogus.jsonl").write_text(
            json.dumps(JournalEntry("x", STATUS_OK).to_dict()) + "\n")
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("a", STATUS_OK))
        assert set(journal.load()) == {"a"}

    def test_read_only_instances_leave_no_files(self, tmp_path):
        target = tmp_path / "journal"
        journal = ShardedJournal(target)
        assert journal.load() == {}
        assert journal.merged_text() == ""
        assert not target.exists()


def shard_line(key, status, error=None):
    return json.dumps(JournalEntry(key, status, error=error).to_dict(),
                      sort_keys=True) + "\n"


class TestShardMergeOrder:
    """Shards must merge in *numeric* (generation, worker) order.

    Regression tests for the lexicographic-sort bug: ids beyond the
    filename zero-padding ("shard-10000-000" < "shard-9999-000" as
    strings) let an older generation's entry win on resume.
    """

    def test_generation_10000_beats_9999(self, tmp_path):
        (tmp_path / "shard-9999-000.jsonl").write_text(
            shard_line("cell", STATUS_FAILED, error=oom_record()))
        (tmp_path / "shard-10000-000.jsonl").write_text(
            shard_line("cell", STATUS_OK))
        journal = ShardedJournal(tmp_path)
        names = [p.name for p in journal.shard_paths()]
        assert names == ["shard-9999-000.jsonl", "shard-10000-000.jsonl"]
        assert journal.load()["cell"].status == STATUS_OK

    def test_worker_1000_merges_after_999(self, tmp_path):
        (tmp_path / "shard-0000-999.jsonl").write_text(
            shard_line("cell", STATUS_FAILED, error=oom_record()))
        (tmp_path / "shard-0000-1000.jsonl").write_text(
            shard_line("cell", STATUS_OK))
        journal = ShardedJournal(tmp_path)
        names = [p.name for p in journal.shard_paths()]
        assert names == ["shard-0000-999.jsonl", "shard-0000-1000.jsonl"]
        assert journal.load()["cell"].status == STATUS_OK

    def test_next_generation_follows_wide_ids(self, tmp_path):
        (tmp_path / "shard-10000-000.jsonl").write_text(
            shard_line("cell", STATUS_OK))
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("other", STATUS_OK))
        assert journal.shard_paths()[-1].name == "shard-10001-000.jsonl"


class TestConcurrentGenerationClaim:
    """Generation claims are atomic across writers on one directory.

    Regression tests for the construction-time claim bug: two journals
    opened on the same (empty) directory both computed generation 0 and
    collided on shard files — the prerequisite bug for cross-process
    campaign dispatch.
    """

    def test_two_live_instances_get_distinct_generations(self, tmp_path):
        first = ShardedJournal(tmp_path)
        second = ShardedJournal(tmp_path)
        # Neither has written yet, so neither can see the other's shards;
        # only the atomic claim keeps them apart.
        first.record(JournalEntry("a", STATUS_OK))
        second.record(JournalEntry("b", STATUS_OK))
        shards = ShardedJournal(tmp_path).shard_paths()
        assert len(shards) == 2
        assert len({p.name for p in shards}) == 2
        assert set(ShardedJournal(tmp_path).load()) == {"a", "b"}

    def test_claim_storm_never_collides(self, tmp_path):
        journals = [ShardedJournal(tmp_path) for _ in range(8)]
        barrier = threading.Barrier(len(journals))
        errors = []

        def write(journal, n):
            barrier.wait()
            try:
                journal.record(JournalEntry(f"cell-{n}", STATUS_OK))
            except OSError as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(j, n))
                   for n, j in enumerate(journals)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        shards = ShardedJournal(tmp_path).shard_paths()
        assert len(shards) == len(journals)
        assert len({p.name for p in shards}) == len(journals)
        assert set(ShardedJournal(tmp_path).load()) == {
            f"cell-{n}" for n in range(len(journals))}


class TestCorruptLineTelemetry:
    def test_sweep_journal_counts_and_warns(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record(JournalEntry("a", STATUS_OK))
        with path.open("a") as handle:
            handle.write('{"v": 1, "key": "b", "stat\n')
            handle.write("not json at all\n")
        with pytest.warns(RuntimeWarning, match="skipped 2 malformed"):
            entries = journal.load()
        assert set(entries) == {"a"}
        assert journal.corrupt_lines == 2

    def test_clean_load_resets_counter_and_stays_quiet(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record(JournalEntry("a", STATUS_OK))
        journal.corrupt_lines = 99  # stale from a previous load
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            journal.load()
        assert journal.corrupt_lines == 0

    def test_sharded_journal_sums_across_shards(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        journal.record(JournalEntry("a", STATUS_OK))
        second = ShardedJournal(tmp_path)
        second.record(JournalEntry("b", STATUS_OK))
        for path in journal.shard_paths():
            with path.open("a") as handle:
                handle.write('{"torn\n')
        reader = ShardedJournal(tmp_path)
        with pytest.warns(RuntimeWarning, match="skipped 2 malformed"):
            entries = reader.load()
        assert set(entries) == {"a", "b"}
        assert reader.corrupt_lines == 2


class TestTracebackStripping:
    def test_journal_line_never_carries_traceback(self):
        try:
            raise OutOfMemoryError("oom")
        except OutOfMemoryError as exc:
            record = ErrorRecord.from_exception(exc, phase="compile",
                                                capture_traceback=True)
        assert record.traceback is not None
        entry = JournalEntry("a", STATUS_FAILED, error=record)
        assert "traceback" not in entry.to_dict()["error"]
        # The in-memory record is untouched — reports still see it.
        assert "Traceback" in record.traceback
