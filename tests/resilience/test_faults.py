"""Fault plans and the injecting backend wrapper."""

import pytest

from repro.cerebras.backend import FabricFaultError
from repro.common.errors import (
    DeviceFaultError,
    OutOfMemoryError,
    TransientError,
)
from repro.graphcore.backend import TileOutOfMemoryError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience.clock import FakeClock
from repro.resilience.faults import (
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    compiler_flake,
    device_fault,
    ipu_tile_oom,
    rdu_section_stall,
    workload_key,
    wse_fabric_fault,
)
from repro.sambanova.backend import SectionStallError


class TestFactories:
    def test_platform_flavours(self):
        assert isinstance(compiler_flake(), TransientError)
        assert isinstance(wse_fabric_fault(), FabricFaultError)
        assert isinstance(rdu_section_stall("section-3"), SectionStallError)
        assert isinstance(device_fault("pcie"), DeviceFaultError)

    def test_tile_oom_is_structured_and_permanent(self):
        fault = ipu_tile_oom(required_bytes=1000.0, available_bytes=900.0)
        assert isinstance(fault, TileOutOfMemoryError)
        assert isinstance(fault, OutOfMemoryError)
        assert not isinstance(fault, TransientError)
        assert fault.required_bytes == 1000.0
        assert fault.available_bytes == 900.0


class TestFaultSpec:
    def test_match_phase_attempt(self):
        spec = FaultSpec(fault=compiler_flake, match="L7",
                         phase="compile", attempts=(0,))
        assert spec.applies("gpt2-small/L7/h768/b16", "compile", 0)
        assert not spec.applies("gpt2-small/L8/h768/b16", "compile", 0)
        assert not spec.applies("gpt2-small/L7/h768/b16", "run", 0)
        assert not spec.applies("gpt2-small/L7/h768/b16", "compile", 1)

    def test_every_attempt(self):
        spec = FaultSpec(fault=compiler_flake, attempts=None)
        for attempt in range(5):
            assert spec.applies("anything", "run", attempt)


class TestFaultPlan:
    def test_scripted_first_attempt_only(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        assert plan.draw("k", "compile") is not None
        assert plan.draw("k", "compile") is None  # retry is clean

    def test_attempt_counters_are_per_key_and_phase(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        assert plan.draw("a", "compile") is not None
        assert plan.draw("b", "compile") is not None
        assert plan.draw("a", "run") is not None

    def test_chaos_is_deterministic(self):
        def drawn(seed):
            plan = FaultPlan.chaos(0.5, seed=seed)
            return [plan.draw(f"k{i}", "compile") is not None
                    for i in range(40)]
        assert drawn(7) == drawn(7)
        assert drawn(7) != drawn(8)
        assert any(drawn(7)) and not all(drawn(7))

    def test_injection_log(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        plan.draw("cell", "compile")
        assert plan.log == [{"key": "cell", "phase": "compile",
                             "attempt": 0, "hang": 0.0,
                             "fault": "TransientError"}]


class TestFaultInjectingBackend:
    def test_passthrough_counts_calls(self, cerebras):
        wrapped = FaultInjectingBackend(cerebras)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        compiled = wrapped.compile(model, train)
        wrapped.run(compiled)
        assert wrapped.calls == {"compile": 1, "run": 1}
        assert wrapped.name == cerebras.name

    def test_raises_scripted_fault(self, cerebras):
        plan = FaultPlan().add(FaultSpec(fault=wse_fabric_fault,
                                         phase="compile", attempts=(0,)))
        wrapped = FaultInjectingBackend(cerebras, plan)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        with pytest.raises(FabricFaultError):
            wrapped.compile(model, train)
        # second attempt is clean
        assert wrapped.compile(model, train) is not None

    def test_hang_burns_injected_clock(self, cerebras):
        clock = FakeClock()
        plan = FaultPlan().add(FaultSpec.hang(500.0, phase="run"))
        wrapped = FaultInjectingBackend(cerebras, plan, clock=clock)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        compiled = wrapped.compile(model, train)
        wrapped.run(compiled)  # hangs, then succeeds
        assert clock.now() == 500.0

    def test_transient_taxonomy_delegates(self, cerebras):
        wrapped = FaultInjectingBackend(cerebras)
        assert wrapped.is_transient(FabricFaultError("x"))
        assert not wrapped.is_transient(OutOfMemoryError("x"))

    def test_workload_key_is_stable(self):
        model = gpt2_model("small").with_layers(3)
        train = TrainConfig(batch_size=16, seq_len=512)
        assert workload_key(model, train) == workload_key(model, train)
        assert "L3" in workload_key(model, train)
