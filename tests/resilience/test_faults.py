"""Fault plans and the injecting backend wrapper."""

import pytest

from repro.cerebras.backend import FabricFaultError
from repro.common.errors import (
    DeviceFaultError,
    OutOfMemoryError,
    TransientError,
)
from repro.gpu.backend import EccRetryError, NcclTimeoutError
from repro.graphcore.backend import HostLinkError, TileOutOfMemoryError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience.clock import FakeClock
from repro.resilience.faults import (
    CHAOS_PROFILES,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    compiler_flake,
    device_fault,
    gpu_ecc_retry,
    gpu_nccl_timeout,
    ipu_host_link_error,
    ipu_tile_oom,
    rdu_section_stall,
    workload_key,
    wse_fabric_fault,
    wse_placement_flake,
)
from repro.sambanova.backend import SectionStallError


class TestFactories:
    def test_platform_flavours(self):
        assert isinstance(compiler_flake(), TransientError)
        assert isinstance(wse_fabric_fault(), FabricFaultError)
        assert isinstance(rdu_section_stall("section-3"), SectionStallError)
        assert isinstance(device_fault("pcie"), DeviceFaultError)

    def test_tile_oom_is_structured_and_permanent(self):
        fault = ipu_tile_oom(required_bytes=1000.0, available_bytes=900.0)
        assert isinstance(fault, TileOutOfMemoryError)
        assert isinstance(fault, OutOfMemoryError)
        assert not isinstance(fault, TransientError)
        assert fault.required_bytes == 1000.0
        assert fault.available_bytes == 900.0


class TestFaultSpec:
    def test_match_phase_attempt(self):
        spec = FaultSpec(fault=compiler_flake, match="L7",
                         phase="compile", attempts=(0,))
        assert spec.applies("gpt2-small/L7/h768/b16", "compile", 0)
        assert not spec.applies("gpt2-small/L8/h768/b16", "compile", 0)
        assert not spec.applies("gpt2-small/L7/h768/b16", "run", 0)
        assert not spec.applies("gpt2-small/L7/h768/b16", "compile", 1)

    def test_every_attempt(self):
        spec = FaultSpec(fault=compiler_flake, attempts=None)
        for attempt in range(5):
            assert spec.applies("anything", "run", attempt)


class TestFaultPlan:
    def test_scripted_first_attempt_only(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        assert plan.draw("k", "compile") is not None
        assert plan.draw("k", "compile") is None  # retry is clean

    def test_attempt_counters_are_per_key_and_phase(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        assert plan.draw("a", "compile") is not None
        assert plan.draw("b", "compile") is not None
        assert plan.draw("a", "run") is not None

    def test_chaos_is_deterministic(self):
        def drawn(seed):
            plan = FaultPlan.chaos(0.5, seed=seed)
            return [plan.draw(f"k{i}", "compile") is not None
                    for i in range(40)]
        assert drawn(7) == drawn(7)
        assert drawn(7) != drawn(8)
        assert any(drawn(7)) and not all(drawn(7))

    def test_chaos_without_platform_is_uniform_compiler_flake(self):
        plan = FaultPlan.chaos(0.25)
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.fault is compiler_flake
        assert spec.phase == "any"
        assert spec.probability == 0.25

    @pytest.mark.parametrize("platform,run_type,compile_type", [
        ("cerebras", FabricFaultError, wse_placement_flake),
        ("sambanova", SectionStallError, compiler_flake),
        ("graphcore", HostLinkError, compiler_flake),
        ("graphcore-pod", HostLinkError, compiler_flake),
    ])
    def test_chaos_platform_profiles_are_phase_calibrated(
            self, platform, run_type, compile_type):
        plan = FaultPlan.chaos(0.1, platform=platform)
        run_specs = [s for s in plan.specs if s.phase == "run"]
        compile_specs = [s for s in plan.specs if s.phase == "compile"]
        assert run_specs and compile_specs
        assert isinstance(run_specs[0].fault(), run_type)
        assert compile_specs[0].fault is compile_type or \
            isinstance(compile_specs[0].fault(),
                       type(compile_type()))

    def test_cerebras_fabric_rate_scales_with_wafer_area(self):
        # The WSE-2's wafer is ~56x the reference die; spare-row
        # absorption leaves 2.5% visible — a 1.4x weight on the base
        # rate, so Cerebras chaos faults more than a die-sized chip.
        rate = 0.1
        wse = FaultPlan.chaos(rate, platform="cerebras")
        gpu = FaultPlan.chaos(rate, platform="gpu")
        fabric = [s for s in wse.specs if s.phase == "run"][0]
        assert fabric.probability == pytest.approx(
            rate * 46_225.0 / 826.0 * 0.025)
        assert fabric.probability > max(s.probability
                                        for s in gpu.specs)

    def test_chaos_probability_is_capped_at_one(self):
        plan = FaultPlan.chaos(1.0, platform="cerebras")
        assert all(s.probability <= 1.0 for s in plan.specs)

    def test_gpu_profile_flavours(self):
        plan = FaultPlan.chaos(0.2, platform="gpu")
        raised = {type(s.fault()).__name__ for s in plan.specs}
        assert "NcclTimeoutError" in raised
        assert "EccRetryError" in raised
        assert isinstance(gpu_nccl_timeout(), NcclTimeoutError)
        assert isinstance(gpu_ecc_retry(), EccRetryError)
        assert isinstance(ipu_host_link_error(), HostLinkError)

    def test_profiles_cover_every_platform_family(self):
        assert set(CHAOS_PROFILES) == {"cerebras", "sambanova",
                                       "graphcore", "gpu"}

    def test_injection_log(self):
        plan = FaultPlan().add(FaultSpec(fault=compiler_flake,
                                         attempts=(0,)))
        plan.draw("cell", "compile")
        assert plan.log == [{"key": "cell", "phase": "compile",
                             "attempt": 0, "hang": 0.0,
                             "fault": "TransientError"}]


class TestFaultInjectingBackend:
    def test_passthrough_counts_calls(self, cerebras):
        wrapped = FaultInjectingBackend(cerebras)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        compiled = wrapped.compile(model, train)
        wrapped.run(compiled)
        assert wrapped.calls == {"compile": 1, "run": 1}
        assert wrapped.name == cerebras.name

    def test_raises_scripted_fault(self, cerebras):
        plan = FaultPlan().add(FaultSpec(fault=wse_fabric_fault,
                                         phase="compile", attempts=(0,)))
        wrapped = FaultInjectingBackend(cerebras, plan)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        with pytest.raises(FabricFaultError):
            wrapped.compile(model, train)
        # second attempt is clean
        assert wrapped.compile(model, train) is not None

    def test_hang_burns_injected_clock(self, cerebras):
        clock = FakeClock()
        plan = FaultPlan().add(FaultSpec.hang(500.0, phase="run"))
        wrapped = FaultInjectingBackend(cerebras, plan, clock=clock)
        model = gpt2_model("small").with_layers(2)
        train = TrainConfig(batch_size=8, seq_len=512)
        compiled = wrapped.compile(model, train)
        wrapped.run(compiled)  # hangs, then succeeds
        assert clock.now() == 500.0

    def test_transient_taxonomy_delegates(self, cerebras):
        wrapped = FaultInjectingBackend(cerebras)
        assert wrapped.is_transient(FabricFaultError("x"))
        assert not wrapped.is_transient(OutOfMemoryError("x"))

    def test_workload_key_is_stable(self):
        model = gpt2_model("small").with_layers(3)
        train = TrainConfig(batch_size=16, seq_len=512)
        assert workload_key(model, train) == workload_key(model, train)
        assert "L3" in workload_key(model, train)
