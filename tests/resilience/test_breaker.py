"""Circuit breaker state machine."""

import pytest

from repro.common.errors import CircuitOpenError, ConfigurationError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.clock import FakeClock


def make_breaker(threshold=3, reset=100.0):
    clock = FakeClock()
    return CircuitBreaker("wse", failure_threshold=threshold,
                          reset_timeout=reset, clock=clock), clock


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker, _clock = make_breaker()
        assert breaker.state == CLOSED
        breaker.check()  # no raise

    def test_opens_after_threshold(self):
        breaker, _clock = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as err:
            breaker.check()
        assert err.value.backend == "wse"
        assert err.value.retry_after == pytest.approx(100.0)

    def test_success_resets_count(self):
        breaker, _clock = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=60.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(61.0)
        assert breaker.state == HALF_OPEN
        breaker.check()  # probe allowed

    def test_half_open_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=60.0)
        breaker.record_failure()
        clock.advance(61.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        breaker, clock = make_breaker(threshold=5, reset=60.0)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(61.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # single probe failure re-opens
        assert breaker.state == OPEN
        assert breaker.trip_count == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=-1.0)

    def test_failures_while_open_do_not_restart_cooldown(self):
        # Regression: calls in flight when the breaker tripped record
        # their failures *while open*; each one used to refresh
        # _opened_at and push half-open out another full cooldown.
        breaker, clock = make_breaker(threshold=2, reset=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        # Stragglers keep failing throughout the cooldown window.
        for _ in range(6):
            clock.advance(10.0)
            breaker.record_failure()
        assert clock.now() == 60.0
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.check()  # the probe goes through on schedule
        assert breaker.trip_count == 1

    def test_half_open_refailure_starts_fresh_cooldown(self):
        # The flip side: a *real* re-trip (failed half-open probe) must
        # still restart the cooldown from the probe's failure time.
        breaker, clock = make_breaker(threshold=1, reset=60.0)
        breaker.record_failure()
        clock.advance(61.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(59.0)
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN


class TestBreakerMetrics:
    def test_trip_count_counts_closed_to_open(self):
        breaker, clock = make_breaker(threshold=2, reset=10.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.trip_count == 1
        # extra failures while already open do not re-count
        breaker.record_failure()
        assert breaker.trip_count == 1
        clock.advance(11.0)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.trip_count == 2

    def test_open_seconds_accumulates_until_close(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(7.0)
        assert breaker.open_seconds == pytest.approx(7.0)
        breaker.record_success()
        assert breaker.open_seconds == pytest.approx(7.0)
        clock.advance(100.0)  # closed time does not count
        assert breaker.open_seconds == pytest.approx(7.0)

    def test_open_seconds_spans_failed_probe(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # probe fails: still the same outage
        clock.advance(4.0)
        breaker.record_success()
        assert breaker.open_seconds == pytest.approx(10.0)

    def test_metrics_snapshot(self):
        breaker, clock = make_breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(2.0)
        metrics = breaker.metrics()
        assert metrics["name"] == "wse"
        assert metrics["state"] == OPEN
        assert metrics["trip_count"] == 1
        assert metrics["open_seconds"] == pytest.approx(2.0)
        assert metrics["consecutive_failures"] == 1

    def test_metrics_start_clean(self):
        breaker, _clock = make_breaker()
        metrics = breaker.metrics()
        assert metrics["trip_count"] == 0
        assert metrics["open_seconds"] == 0.0
        assert metrics["state"] == CLOSED
