"""Retry policy and deterministic backoff."""

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == policy.max_retries + 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff=-1.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        schedule = RetryPolicy(base_backoff=1.0, multiplier=2.0,
                               jitter=0.0).backoff_schedule()
        assert [schedule.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_capped_at_max_backoff(self):
        schedule = RetryPolicy(base_backoff=10.0, multiplier=10.0,
                               max_backoff=25.0,
                               jitter=0.0).backoff_schedule()
        assert schedule.delay(5) == 25.0

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(base_backoff=1.0, multiplier=2.0, jitter=0.5)
        schedule = policy.backoff_schedule()
        for i in range(5):
            base = min(policy.max_backoff, 2.0 ** i)
            delay = schedule.delay(i)
            assert base <= delay <= base * 1.5 + 1e-9

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(seed=42).backoff_schedule()
        b = RetryPolicy(seed=42).backoff_schedule()
        assert [a.delay(i) for i in range(5)] == \
               [b.delay(i) for i in range(5)]

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(seed=1).backoff_schedule()
        b = RetryPolicy(seed=2).backoff_schedule()
        assert [a.delay(i) for i in range(5)] != \
               [b.delay(i) for i in range(5)]

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_schedule().delay(-1)
