"""The per-cell retry/deadline/breaker engine."""

import pytest

from repro.common.errors import (
    CompilationError,
    DeviceFaultError,
    OutOfMemoryError,
    TransientError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import FakeClock, SystemClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import STATUS_FAILED, STATUS_GATED, STATUS_OK
from repro.resilience.retry import RetryPolicy


def make_executor(max_retries=2, cell_timeout=None, breaker=None):
    clock = FakeClock()
    executor = ResilientExecutor(
        retry=RetryPolicy(max_retries=max_retries, base_backoff=1.0,
                          multiplier=2.0, jitter=0.0),
        cell_timeout=cell_timeout, clock=clock, breaker=breaker)
    return executor, clock


class FlakyCompile:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return "compiled"


class TestRetries:
    def test_success_first_try(self):
        executor, _clock = make_executor()
        outcome = executor.execute("cell", lambda: "compiled",
                                   lambda c: f"ran-{c}")
        assert outcome.ok
        assert outcome.compiled == "compiled"
        assert outcome.run == "ran-compiled"
        assert outcome.attempts == 1
        assert outcome.retried == ()

    def test_transient_retried_to_success(self):
        executor, clock = make_executor(max_retries=2)
        compile_fn = FlakyCompile(2, lambda: TransientError("flake"))
        outcome = executor.execute("cell", compile_fn)
        assert outcome.ok
        assert outcome.attempts == 3
        assert len(outcome.retried) == 2
        assert all(r.transient for r in outcome.retried)
        assert clock.sleeps == [1.0, 2.0]  # exponential backoff

    def test_transient_exhausts_budget(self):
        executor, _clock = make_executor(max_retries=1)
        compile_fn = FlakyCompile(5, lambda: TransientError("flake"))
        outcome = executor.execute("cell", compile_fn)
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 2
        assert compile_fn.calls == 2

    def test_permanent_failure_not_retried(self):
        executor, clock = make_executor(max_retries=3)
        compile_fn = FlakyCompile(1, lambda: OutOfMemoryError(
            "oom", required_bytes=2e9, available_bytes=1e9))
        outcome = executor.execute("cell", compile_fn)
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 1
        assert clock.sleeps == []
        assert outcome.error.type == "OutOfMemoryError"
        assert outcome.error.attrs["required_bytes"] == 2e9

    def test_custom_taxonomy(self):
        class PlatformBlip(CompilationError):
            """Transient on this platform despite being a compile error."""

        executor, _clock = make_executor(max_retries=1)
        compile_fn = FlakyCompile(1, lambda: PlatformBlip("blip"))
        outcome = executor.execute(
            "cell", compile_fn,
            is_transient=lambda exc: isinstance(exc, PlatformBlip))
        assert outcome.ok
        assert outcome.attempts == 2

    def test_run_phase_recorded(self):
        executor, _clock = make_executor(max_retries=0)

        def bad_run(_compiled):
            raise TransientError("runtime blip")

        outcome = executor.execute("cell", lambda: "compiled", bad_run)
        assert outcome.status == STATUS_FAILED
        assert outcome.error.phase == "run"

    def test_non_repro_errors_propagate(self):
        executor, _clock = make_executor()
        with pytest.raises(ZeroDivisionError):
            executor.execute("cell", lambda: 1 / 0)


class TestDeadlines:
    def test_fake_clock_hang_cut_off(self):
        executor, clock = make_executor(max_retries=0, cell_timeout=60.0)

        def hanging_compile():
            clock.sleep(300.0)
            return "compiled"

        outcome = executor.execute("cell", hanging_compile)
        assert outcome.status == STATUS_FAILED
        assert outcome.error.type == "DeadlineExceededError"
        assert outcome.error.attrs["deadline"] == 60.0
        assert outcome.error.attrs["elapsed"] == 300.0

    def test_deadline_retryable_by_policy(self):
        clock = FakeClock()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=1, base_backoff=1.0, jitter=0.0),
            cell_timeout=60.0, clock=clock)
        calls = []

        def compile_fn():
            calls.append(1)
            if len(calls) == 1:
                clock.sleep(120.0)  # hang once
            return "compiled"

        outcome = executor.execute("cell", compile_fn)
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.retried[0].type == "DeadlineExceededError"

    def test_deadline_not_retried_when_disabled(self):
        clock = FakeClock()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=3, jitter=0.0,
                              retry_deadline_errors=False),
            cell_timeout=60.0, clock=clock)

        def hanging():
            clock.sleep(120.0)
            return "compiled"

        outcome = executor.execute("cell", hanging)
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 1

    def test_real_clock_watchdog_cuts_off_true_hang(self):
        import threading

        release = threading.Event()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, jitter=0.0,
                              retry_deadline_errors=False),
            cell_timeout=0.2, clock=SystemClock())

        def truly_hangs():
            release.wait(10.0)  # would block far past the deadline
            return "compiled"

        outcome = executor.execute("cell", truly_hangs)
        release.set()  # unblock the abandoned worker thread
        assert outcome.status == STATUS_FAILED
        assert outcome.error.type == "DeadlineExceededError"


class TestBreakerIntegration:
    def test_gated_after_consecutive_faults(self):
        clock = FakeClock()
        breaker = CircuitBreaker("wse", failure_threshold=2,
                                 reset_timeout=600.0, clock=clock)
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, jitter=0.0),
            clock=clock, breaker=breaker)

        def broken():
            raise DeviceFaultError("fabric died", component="fabric")

        assert executor.execute("a", broken).status == STATUS_FAILED
        assert executor.execute("b", broken).status == STATUS_FAILED
        gated = executor.execute("c", lambda: "compiled")
        assert gated.status == STATUS_GATED
        assert gated.attempts == 0
        assert gated.error.type == "CircuitOpenError"

    def test_capability_failures_do_not_trip(self):
        clock = FakeClock()
        breaker = CircuitBreaker("wse", failure_threshold=2, clock=clock)
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, jitter=0.0),
            clock=clock, breaker=breaker)

        def too_big():
            raise OutOfMemoryError("oom")

        for key in ("a", "b", "c", "d"):
            assert executor.execute(key, too_big).status == STATUS_FAILED
        assert breaker.state == "closed"

    def test_breaker_recovers_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker("wse", failure_threshold=1,
                                 reset_timeout=60.0, clock=clock)
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, jitter=0.0),
            clock=clock, breaker=breaker)

        def broken():
            raise DeviceFaultError("x")

        executor.execute("a", broken)
        assert executor.execute("b", lambda: "c").status == STATUS_GATED
        clock.advance(61.0)
        assert executor.execute("c", lambda: "c").status == STATUS_OK
        assert breaker.state == "closed"


class TestOutcome:
    def test_journal_entry_success_summary(self):
        class Run:
            tokens_per_second = 100.0
            step_time = 0.5
            achieved_flops = 1e12

        executor, _clock = make_executor()
        outcome = executor.execute("cell", lambda: "compiled",
                                   lambda c: Run())
        entry = outcome.journal_entry()
        assert entry.status == STATUS_OK
        assert entry.summary["tokens_per_second"] == 100.0

    def test_journal_entry_failure_keeps_record(self):
        executor, _clock = make_executor(max_retries=0)

        def oom():
            raise OutOfMemoryError("oom", required_bytes=3.0,
                                   available_bytes=2.0)

        entry = executor.execute("cell", oom).journal_entry()
        assert entry.status == STATUS_FAILED
        assert entry.error.attrs == {"required_bytes": 3.0,
                                     "available_bytes": 2.0}


class TestWatchdogAccounting:
    def _hung_executor(self, cap):
        import threading

        release = threading.Event()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, jitter=0.0,
                              retry_deadline_errors=False),
            cell_timeout=0.1, clock=SystemClock(),
            max_abandoned_watchdogs=cap)

        def truly_hangs():
            release.wait(30.0)
            return "compiled"

        return executor, truly_hangs, release

    def test_metrics_start_clean(self):
        executor, _clock = make_executor()
        metrics = executor.metrics()
        assert metrics["abandoned_watchdogs"] == 0
        assert metrics["live_watchdogs"] == 0
        assert metrics["watchdog_denials"] == 0
        assert metrics["watchdog_cap"] > 0

    def test_abandoned_watchdog_counted(self):
        executor, hangs, release = self._hung_executor(cap=4)
        try:
            outcome = executor.execute("cell", hangs)
            assert outcome.status == STATUS_FAILED
            metrics = executor.metrics()
            assert metrics["abandoned_watchdogs"] == 1
            assert metrics["live_watchdogs"] == 1
        finally:
            release.set()

    def test_cap_fails_fast_instead_of_stacking_threads(self):
        executor, hangs, release = self._hung_executor(cap=1)
        try:
            assert executor.execute("a", hangs).status == STATUS_FAILED
            denied = executor.execute("b", hangs)
            assert denied.status == STATUS_FAILED
            assert denied.error.type == "DeadlineExceededError"
            assert "watchdog capacity" in denied.error.message
            metrics = executor.metrics()
            assert metrics["abandoned_watchdogs"] == 1  # no new thread
            assert metrics["watchdog_denials"] == 1
        finally:
            release.set()

    def test_finished_hang_frees_capacity(self):
        executor, hangs, release = self._hung_executor(cap=1)
        assert executor.execute("a", hangs).status == STATUS_FAILED
        release.set()
        deadline = SystemClock().now() + 5.0
        while (executor.metrics()["live_watchdogs"]
               and SystemClock().now() < deadline):
            pass
        assert executor.metrics()["live_watchdogs"] == 0
        # Capacity is back: the next guarded call really runs.
        assert executor.execute("b", lambda: "compiled").ok

    def test_fake_clock_never_spawns_watchdogs(self):
        executor, clock = make_executor(max_retries=0, cell_timeout=60.0)

        def hanging():
            clock.sleep(300.0)
            return "compiled"

        assert executor.execute("cell", hanging).status == STATUS_FAILED
        assert executor.metrics()["abandoned_watchdogs"] == 0
