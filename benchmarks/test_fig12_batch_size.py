"""Fig. 12 — batch-size scaling behaviour across platforms.

Paper: IPU and RDU throughput improves near-linearly with batch size;
WSE gains strongly below batch ~200 and little beyond.
"""

import pytest

from repro import DeploymentOptimizer, TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import print_comparison

WSE_BATCHES = [32, 64, 128, 200, 256, 400, 512]
RDU_BATCHES = [4, 8, 16, 32]
IPU_BATCHES = [8, 16, 32]


def measure_batches(cerebras, sambanova, graphcore):
    wse = DeploymentOptimizer(cerebras).batch_sweep(
        gpt2_model("small"), TrainConfig(batch_size=8, seq_len=1024),
        WSE_BATCHES)
    rdu = DeploymentOptimizer(sambanova).batch_sweep(
        gpt2_model("small"),
        TrainConfig(batch_size=4, seq_len=1024,
                    precision=PrecisionPolicy.pure(Precision.BF16)),
        RDU_BATCHES, mode="O1")
    ipu = DeploymentOptimizer(graphcore).batch_sweep(
        decoder_block_probe(768, 4),
        TrainConfig(batch_size=8, seq_len=1024),
        IPU_BATCHES, n_ipus=2)
    return wse, rdu, ipu


@pytest.mark.benchmark(group="fig12")
def test_fig12_batch_scaling(benchmark, cerebras, sambanova, graphcore):
    wse, rdu, ipu = benchmark.pedantic(
        measure_batches, args=(cerebras, sambanova, graphcore),
        rounds=1, iterations=1)

    for label, sweep in (("WSE", wse), ("RDU", rdu), ("IPU", ipu)):
        print_comparison(
            f"Fig. 12 ({label}): tokens/s vs batch "
            f"(scaling exponent {sweep.scaling_exponent:.2f})",
            ["batch"] + [str(b) for b in sweep.batch_sizes],
            [["tokens/s"] + [f"{v:,.0f}" for v in sweep.tokens_per_second]])

    # IPU and RDU scale near-linearly; WSE saturates.
    assert rdu.near_linear
    assert ipu.near_linear
    assert not wse.near_linear
    # The WSE knee falls below the paper's 200 recommendation threshold.
    assert wse.saturation_batch is not None
    assert wse.saturation_batch <= 256
    # Beyond ~200 the marginal WSE gain is small.
    rates = dict(zip(wse.batch_sizes, wse.tokens_per_second))
    assert rates[400] / rates[200] < 1.10
    assert rates[128] / rates[64] > 1.10
