"""Published numbers from the paper's tables and figures.

Used by the benchmark harness to print paper-vs-measured rows. Values
are transcribed from the paper text; figure series are approximate
readings where only a plot is given.
"""

from __future__ import annotations

from repro.core.report import render_table

# Table I: WSE-2 PE allocation ratio (%) vs decoder layers, HS=768.
TABLE1_LAYERS = [1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72, 78]
TABLE1_PE_PERCENT = [33, 60, 85, 87, 91, 88, 92, 92, 92, 92, 92, 92, 93,
                     None]  # None == Fail

# Table II(a): O3 forward/backward sections-per-decoder ratios vs HS.
TABLE2A = {
    # HS: (forward util %, fwd ratio, backward util %, bwd ratio)
    480: (55.0, 0.66, 44.0, 1.83),
    768: (62.0, 0.66, 52.5, 2.0),
    1024: (64.0, 0.75, 59.5, 2.0),
    1280: (53.0, 1.0, 60.5, 2.0),
    1600: (63.0, 1.0, 56.75, 3.0),
}

# Table II(b): O1 LM-head sharding vs HS.
TABLE2B = {
    # HS: (shards, sections, PMU/section, PCU/section)
    3072: (9, 2, 316, 504),
    4096: (9, 2, 316, 504),
    5120: (26, 2, 340, 402),
    6686: (30, 3, 339, 382),
    8192: (30, 3, 339, 382),
}

# Table III: scalability throughput.
TABLE3_WSE = {  # label: (model, tokens/s)
    "DP0": ("small", 0.66e6),
    "DP2": ("small", 0.98e6),
    "DP4": ("mini", 1.84e6),
    "DP8": ("tiny", 3.6e6),
    "PP(stream)": ("small", 0.53e6),
}
TABLE3_IPU = {  # (n_ipus, layers): samples/s-scale figure
    (4, 6): 120.0, (4, 12): 80.0,
    (8, 18): 129.0, (8, 24): 105.4,
    (16, 30): 223.0, (16, 36): 181.0, (16, 42): 178.0, (16, 48): 153.0,
}
TABLE3_RDU = {2: 1540.0, 4: 945.0, 8: 918.0}  # tp: tokens/s
TABLE3_GPU = {  # (tp, pp, dp): per-GPU TFLOP/s reference
    (8, 1, 1): 155.3, (4, 2, 1): 145.2, (2, 4, 1): 135.8, (1, 8, 1): 120.4,
    (8, 8, 16): 163.2, (4, 4, 64): 158.9,
}

# Table IV: precision throughput pairs (baseline, optimized, gain).
TABLE4 = {
    "IPU": (154e3, 188e3, 0.220),
    "WSE": (527e3, 583e3, 0.107),
    "RDU": (631.0, 847.0, 0.343),
}

# Fig. 9a: WSE peak TFLOPs window.
FIG9A_PEAK_TFLOPS = (327.0, 338.0)
FIG9A_PEAK_LAYERS = (18, 30)

# Fig. 9d: IPU TFLOPs plateau after ~4 layers; fail at 10.
FIG9D_FAIL_LAYERS = 10
FIG10_IPU_TFLOPS = (91.0, 143.0)
FIG10_RDU_TFLOPS = (35.55, 50.64)

# Fig. 10 classifications.
FIG10_BOUNDS = {"CS-2": "compute", "SN30": "memory", "Bow-2000": "memory"}


def print_comparison(title: str, headers: list[str],
                     rows: list[list[object]]) -> None:
    """Print one paper-vs-measured table to the bench log."""
    print()
    print(render_table(headers, rows, title=title))


def fmt(value: float | None, spec: str = ".1f") -> str:
    """Format an optional value ('Fail' when None)."""
    if value is None:
        return "Fail"
    return format(value, spec)
