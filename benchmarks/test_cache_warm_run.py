"""Warm re-run speedup from the content-addressed compile cache.

The tentpole claim, measured: re-running an unchanged CPU-bound grid
with ``ExecutionPolicy(cache=DIR)`` replays every cell from the cache
instead of burning the compile again, finishing at least 3x faster
than the cold run that populated it — while producing identical cell
reports. In the paper's setting the saved work is the dataflow
compiler's placement/mapping search, here stood in for by
:class:`~repro.workloads.reference.CpuBoundBackend`'s deterministic
pure-Python burn.

The speedup floor is deliberately conservative: the warm run's cost is
journal + cache IO only, and in practice lands one to two orders of
magnitude below the cold run.
"""

import time

from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import ExecutionPolicy
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import SweepSpec, run_grid

MIN_SPEEDUP = 3.0
#: Heavy enough (~0.2 s per cell) that compile work dominates the
#: harness overhead the warm run still pays.
SPINS_PER_LAYER = 60_000
LAYERS = (6, 6, 6, 6, 6, 6)


def grid():
    return [SweepSpec(f"c{i}-L{n}",
                      gpt2_model("mini").with_layers(n),
                      TrainConfig(batch_size=4, seq_len=64))
            for i, n in enumerate(LAYERS)]


def timed_run(cache_dir, spins=SPINS_PER_LAYER):
    backend = CpuBoundBackend(spins_per_layer=spins)
    policy = ExecutionPolicy(cache=cache_dir)
    start = time.perf_counter()
    cells = run_grid(backend, grid(), policy=policy)
    return time.perf_counter() - start, cells


def test_warm_rerun_beats_cold_by_3x(tmp_path):
    timed_run(tmp_path / "warmup", spins=10)  # harness warm-up
    cold_s, cold_cells = timed_run(tmp_path / "cache")
    warm_s, warm_cells = timed_run(tmp_path / "cache")
    speedup = cold_s / warm_s
    print(f"\n  cold (populates cache): {cold_s:7.2f} s")
    print(f"  warm (replays cache):   {warm_s:7.2f} s")
    print(f"  speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x)")
    assert all(not c.failed for c in cold_cells + warm_cells)
    for a, b in zip(cold_cells, warm_cells):
        assert a.compiled == b.compiled
        assert a.run.meta["checksum"] == b.run.meta["checksum"]
    assert speedup >= MIN_SPEEDUP
