"""Table III — scalability performance across all platforms.

WSE-2 intra-chip data parallelism (+ weight streaming), IPU pipeline
parallelism at 4/8/16 IPUs, RDU tensor parallelism at 2/4/8 chips, and
the GPU reference configurations.
"""

import pytest

from repro import TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import (
    TABLE3_GPU,
    TABLE3_IPU,
    TABLE3_RDU,
    TABLE3_WSE,
    print_comparison,
)


def measure_wse(cerebras):
    train = TrainConfig(batch_size=256, seq_len=1024)
    rows = {}
    rows["DP0"] = cerebras.run(cerebras.compile(
        gpt2_model("small"), train, n_replicas=1)).tokens_per_second
    rows["DP2"] = cerebras.run(cerebras.compile(
        gpt2_model("small"), train, n_replicas=2)).tokens_per_second
    rows["DP4"] = cerebras.run(cerebras.compile(
        gpt2_model("mini"), train, n_replicas=4)).tokens_per_second
    rows["DP8"] = cerebras.run(cerebras.compile(
        gpt2_model("tiny"), train, n_replicas=8)).tokens_per_second
    rows["PP(stream)"] = cerebras.run(cerebras.compile(
        gpt2_model("small"), train,
        mode="weight_streaming")).tokens_per_second
    return rows


def measure_ipu(graphcore_pod):
    train = TrainConfig(batch_size=128, seq_len=1024)
    return {(n, layers): graphcore_pod.run(graphcore_pod.compile(
        decoder_block_probe(768, layers), train,
        n_ipus=n)).samples_per_second
        for (n, layers) in TABLE3_IPU}


def measure_rdu(sambanova):
    train = TrainConfig(batch_size=8, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    model = llama2_model("7b")
    return {tp: sambanova.run(sambanova.compile(
        model, train, mode="O1", tp=tp)).tokens_per_second
        for tp in TABLE3_RDU}


def measure_gpu(gpu):
    train = TrainConfig(batch_size=64, seq_len=1024,
                        precision=PrecisionPolicy.mixed(Precision.BF16))
    model = gpt2_model("xlarge")
    rows = {}
    for (tp, pp, dp) in TABLE3_GPU:
        t = train.with_batch_size(64 * dp)
        micro = 128 if dp > 1 else None
        run = gpu.run(gpu.compile(model, t, tp=tp, pp=pp, dp=dp,
                                  micro_batches=micro))
        rows[(tp, pp, dp)] = run.meta["per_gpu_flops"] / 1e12
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_wse_scaling(benchmark, cerebras):
    rows = benchmark.pedantic(measure_wse, args=(cerebras,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table III (WSE-2): throughput, paper tokens/s in parentheses",
        ["config", "model", "measured tok/s", "paper"],
        [[label, TABLE3_WSE[label][0], f"{rows[label]:,.0f}",
          f"{TABLE3_WSE[label][1]:,.0f}"] for label in rows])

    # DP on the same model helps; streaming costs ~20%.
    assert rows["DP2"] > 1.15 * rows["DP0"]
    assert rows["PP(stream)"] == pytest.approx(0.8 * rows["DP0"], rel=0.08)
    # Small models replicate further and run faster per token.
    assert rows["DP8"] > rows["DP2"]
    assert rows["DP4"] > rows["DP2"]


@pytest.mark.benchmark(group="table3")
def test_table3_ipu_scaling(benchmark, graphcore_pod):
    rows = benchmark.pedantic(measure_ipu, args=(graphcore_pod,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table III (IPU): pipeline throughput, paper figure in parentheses",
        ["config", "measured samples/s", "paper"],
        [[f"{n}PP {layers}L", f"{rows[(n, layers)]:.1f}",
          f"{TABLE3_IPU[(n, layers)]:.1f}"]
         for (n, layers) in sorted(rows)])

    # Within each PP size, more layers per IPU means less throughput.
    assert rows[(4, 6)] > rows[(4, 12)]
    assert rows[(8, 18)] > rows[(8, 24)]
    assert (rows[(16, 30)] > rows[(16, 36)] >= rows[(16, 42)]
            > rows[(16, 48)])


@pytest.mark.benchmark(group="table3")
def test_table3_rdu_scaling(benchmark, sambanova):
    rows = benchmark.pedantic(measure_rdu, args=(sambanova,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table III (RDU, LLaMA-2 7B): paper tokens/s in parentheses",
        ["TP", "measured tok/s", "paper"],
        [[tp, f"{rows[tp]:.0f}", f"{TABLE3_RDU[tp]:.0f}"]
         for tp in sorted(rows)])

    # The cross-machine cliff and the plateau.
    assert rows[4] < 0.75 * rows[2]
    assert abs(rows[8] - rows[4]) < 0.15 * rows[4]


@pytest.mark.benchmark(group="table3")
def test_table3_gpu_reference(benchmark, gpu):
    rows = benchmark.pedantic(measure_gpu, args=(gpu,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table III (GPU reference): per-GPU TFLOP/s, paper in parentheses",
        ["config", "measured", "paper"],
        [[f"T{tp}P{pp}D{dp}", f"{rows[(tp, pp, dp)]:.1f}",
          f"{TABLE3_GPU[(tp, pp, dp)]:.1f}"]
         for (tp, pp, dp) in rows])

    # Within a node, TP-heavy beats PP-heavy.
    assert (rows[(8, 1, 1)] > rows[(4, 2, 1)] > rows[(2, 4, 1)]
            > rows[(1, 8, 1)])
    # Large accumulations keep big clusters competitive.
    assert rows[(4, 4, 64)] > rows[(1, 8, 1)]
    # Per-GPU MFU in the paper's band.
    for value in rows.values():
        assert 70.0 < value < 200.0
