"""Ablations of the design choices DESIGN.md calls out.

1. Elastic (cap-limited) vs unbounded PE allocation on WSE-2.
2. Operator fusion (O1) vs none (O0) on the RDU.
3. Pipeline load-balancing policy on the IPU (balanced vs contiguous
   naive grouping).
4. Time-weighted (Eq. 2/4) vs unweighted averaging of section metrics.
"""

import pytest

from repro import (
    TrainConfig,
    allocation_ratio,
    gpt2_model,
    weighted_load_imbalance,
)
from repro.core.metrics import load_imbalance, phase_allocation_ratio
from repro.cerebras.placement import WaferPlacer
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import print_comparison


@pytest.mark.benchmark(group="ablations")
def test_ablation_placement_strategy(benchmark):
    """Strip (slicing) placement vs naive shelf packing on a full wafer."""

    def run():
        demands = [(f"k{i}", 18_000.0 + 997.0 * (i % 7))
                   for i in range(40)]
        strips = WaferPlacer(922, 857, strategy="strips")
        shelves = WaferPlacer(922, 857, strategy="shelves")
        return (strips.packing_efficiency(demands),
                shelves.packing_efficiency(demands))

    strip_eff, shelf_eff = benchmark.pedantic(run, rounds=1, iterations=1)
    print_comparison(
        "Ablation: placement strategy packing efficiency",
        ["strategy", "efficiency"],
        [["strips (slicing)", f"{strip_eff:.3f}"],
         ["shelves (naive)", f"{shelf_eff:.3f}"]])
    assert strip_eff >= shelf_eff
    assert strip_eff > 0.9


@pytest.mark.benchmark(group="ablations")
def test_ablation_elastic_allocation(benchmark, cerebras):
    """Kernel scalability caps on vs off: without them, the simulator
    cannot reproduce Table I's under-subscribed regime (33% at one
    layer, 60% at six) — every model would report ~93% allocation."""
    train = TrainConfig(batch_size=64, seq_len=1024)

    def run():
        rows = {}
        for layers in (1, 6, 24):
            model = gpt2_model("small").with_layers(layers)
            capped = allocation_ratio(cerebras.compile(model, train))
            uncapped = allocation_ratio(cerebras.compile(
                model, train, respect_caps=False))
            rows[layers] = (capped, uncapped)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_comparison(
        "Ablation: per-kernel scalability caps (paper Table I needs them)",
        ["layers", "with caps", "without caps"],
        [[layers, f"{capped:.1%}", f"{uncapped:.1%}"]
         for layers, (capped, uncapped) in rows.items()])
    # Small models under-subscribe only when caps exist.
    assert rows[1][0] < 0.40
    assert rows[1][1] > 0.85
    assert rows[6][0] < 0.70
    # At saturation the two agree.
    assert rows[24][0] == pytest.approx(rows[24][1], abs=0.03)


@pytest.mark.benchmark(group="ablations")
def test_ablation_fusion(benchmark, sambanova):
    """O1 fusion vs O0: section count, DDR traffic, and throughput."""
    train = TrainConfig(batch_size=16, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small")

    def run():
        out = {}
        for mode in ("O0", "O1"):
            compiled = sambanova.compile(model, train, mode=mode)
            measured = sambanova.run(compiled)
            out[mode] = {
                "sections": len(compiled.phases),
                "traffic_gb": measured.global_traffic_bytes_per_step / 1e9,
                "tokens_per_s": measured.tokens_per_second,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_comparison(
        "Ablation: operator fusion (O0 -> O1)",
        ["mode", "sections", "DDR GB/step", "tokens/s"],
        [[mode, row["sections"], f"{row['traffic_gb']:.1f}",
          f"{row['tokens_per_s']:,.0f}"] for mode, row in out.items()])
    assert out["O1"]["sections"] < out["O0"]["sections"]
    assert out["O1"]["traffic_gb"] < out["O0"]["traffic_gb"]
    assert out["O1"]["tokens_per_s"] > 1.5 * out["O0"]["tokens_per_s"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_pipeline_balance(benchmark, graphcore_pod):
    """Balanced grouping vs naive front-loaded grouping on the IPU."""
    train = TrainConfig(batch_size=64, seq_len=1024)
    model = decoder_block_probe(768, 13)

    def run():
        balanced = graphcore_pod.run(graphcore_pod.compile(
            model, train, n_ipus=8)).samples_per_second
        naive = graphcore_pod.run(graphcore_pod.compile(
            model, train, n_ipus=8,
            layers_per_ipu=[5, 5, 3, 0, 0])).samples_per_second
        return balanced, naive

    balanced, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    print_comparison(
        "Ablation: IPU layer grouping",
        ["policy", "samples/s"],
        [["balanced (bottleneck-optimal)", f"{balanced:.1f}"],
         ["naive front-loaded", f"{naive:.1f}"]])
    assert balanced > 1.3 * naive


@pytest.mark.benchmark(group="ablations")
def test_ablation_time_weighting(benchmark, sambanova):
    """Why Eq. 2/4 weight by section runtime: unweighted averages
    misstate both allocation and balance on the RDU."""
    train = TrainConfig(batch_size=16, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small")

    def run():
        report = sambanova.compile(model, train, mode="O3")
        weighted_alloc = allocation_ratio(report)
        unweighted_alloc = sum(
            phase_allocation_ratio(p, report.total_compute_units)
            for p in report.phases) / len(report.phases)
        weighted_li = weighted_load_imbalance(report)
        lis = []
        for phase in report.phases:
            try:
                lis.append(load_imbalance(phase.tasks))
            except Exception:
                continue
        unweighted_li = sum(lis) / len(lis)
        return weighted_alloc, unweighted_alloc, weighted_li, unweighted_li

    w_alloc, u_alloc, w_li, u_li = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    print_comparison(
        "Ablation: Eq. 2/4 time weighting",
        ["metric", "weighted (paper)", "unweighted"],
        [["allocation", f"{w_alloc:.3f}", f"{u_alloc:.3f}"],
         ["load imbalance", f"{w_li:.3f}", f"{u_li:.3f}"]])
    # The estimates genuinely differ — dropping the weights changes the
    # reported numbers by several points.
    assert abs(w_alloc - u_alloc) > 0.01
    assert abs(w_li - u_li) > 0.002
