"""Fig. 8 — Load imbalance of WSE-2 and RDU.

Paper: WSE LI stays between 0.96 and 1.0 across layer counts (mature
kernel-level balancing); on the RDU, O1's operator fusion is markedly
better balanced than O3's packed sections, and O3's balance degrades as
layer count grows.
"""

import pytest

from repro import TrainConfig, gpt2_model, weighted_load_imbalance
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import print_comparison

LAYERS = [4, 8, 12, 16, 24, 32]
HIDDENS = [480, 768, 1024, 1280, 1600]


def measure_li_vs_layers(cerebras, sambanova):
    wse_train = TrainConfig(batch_size=64, seq_len=1024)
    rdu_train = TrainConfig(batch_size=16, seq_len=1024,
                            precision=PrecisionPolicy.pure(Precision.BF16))
    base = gpt2_model("small")
    curves = {"WSE": [], "RDU-O1": [], "RDU-O3": []}
    for layers in LAYERS:
        model = base.with_layers(layers)
        curves["WSE"].append(weighted_load_imbalance(
            cerebras.compile(model, wse_train)))
        for mode in ("O1", "O3"):
            curves[f"RDU-{mode}"].append(weighted_load_imbalance(
                sambanova.compile(model, rdu_train, mode=mode)))
    return curves


def measure_li_vs_hidden(sambanova):
    rdu_train = TrainConfig(batch_size=16, seq_len=1024,
                            precision=PrecisionPolicy.pure(Precision.BF16))
    curves = {"RDU-O1": [], "RDU-O3": []}
    for hidden in HIDDENS:
        probe = decoder_block_probe(hidden, 8)
        for mode in ("O1", "O3"):
            curves[f"RDU-{mode}"].append(weighted_load_imbalance(
                sambanova.compile(probe, rdu_train, mode=mode)))
    return curves


@pytest.mark.benchmark(group="fig8")
def test_fig8a_li_vs_layers(benchmark, cerebras, sambanova):
    curves = benchmark.pedantic(measure_li_vs_layers,
                                args=(cerebras, sambanova),
                                rounds=1, iterations=1)
    print_comparison(
        "Fig. 8a: load imbalance vs layers (1.0 = balanced)",
        ["platform"] + [f"L{n}" for n in LAYERS],
        [[name] + [f"{v:.3f}" for v in curve]
         for name, curve in curves.items()])

    # WSE-2 stays near 1 at every layer count (paper: 0.96-1.0).
    assert all(v >= 0.90 for v in curves["WSE"])
    # O1 fusion beats O3 everywhere.
    for o1, o3 in zip(curves["RDU-O1"], curves["RDU-O3"]):
        assert o1 > o3
    # O3 balance degrades with depth; O1 barely moves.
    assert curves["RDU-O3"][-1] < curves["RDU-O3"][0] - 0.03
    assert abs(curves["RDU-O1"][-1] - curves["RDU-O1"][0]) < 0.08


@pytest.mark.benchmark(group="fig8")
def test_fig8b_li_vs_hidden(benchmark, sambanova):
    curves = benchmark.pedantic(measure_li_vs_hidden, args=(sambanova,),
                                rounds=1, iterations=1)
    print_comparison(
        "Fig. 8b: RDU load imbalance vs hidden size",
        ["mode"] + [f"H{h}" for h in HIDDENS],
        [[name] + [f"{v:.3f}" for v in curve]
         for name, curve in curves.items()])

    # O1's fusion is markedly superior at every hidden size.
    for o1, o3 in zip(curves["RDU-O1"], curves["RDU-O3"]):
        assert o1 > o3 + 0.15
