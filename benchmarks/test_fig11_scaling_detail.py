"""Fig. 11 — scalability details across dataflow hardware.

(a) WSE throughput and communication overhead vs replica count,
(b) RDU per-chip resource utilization vs TP configuration,
(c) IPU throughput under nine layer-distribution configurations.
"""

import pytest

from repro import TrainConfig, allocation_ratio, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import print_comparison

IPU_DISTRIBUTIONS = [
    [3, 3, 3, 3, 0], [3, 3, 2, 2, 2], [2, 3, 3, 2, 2],
    [4, 2, 2, 2, 2], [4, 4, 2, 2, 0], [2, 2, 4, 2, 2],
    [5, 3, 2, 1, 1], [2, 4, 4, 1, 1], [6, 2, 2, 2, 0],
]


def measure_wse_replicas(cerebras):
    train = TrainConfig(batch_size=256, seq_len=1024)
    model = gpt2_model("tiny")
    rows = []
    for replicas in (1, 2, 4, 8):
        run = cerebras.run(cerebras.compile(model, train,
                                            n_replicas=replicas))
        rows.append({
            "replicas": replicas,
            "tokens_per_s": run.tokens_per_second,
            "comm_fraction": run.meta["sync_time"] / run.step_time,
        })
    return rows


def measure_rdu_tp(sambanova):
    train = TrainConfig(batch_size=8, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    model = llama2_model("7b")
    rows = []
    for tp in (2, 4, 8):
        report = sambanova.compile(model, train, mode="O1", tp=tp)
        rows.append({
            "tp": tp,
            "pcu_pct": 100 * allocation_ratio(report, kind="compute"),
            "pmu_pct": 100 * allocation_ratio(report, kind="memory"),
        })
    return rows


def measure_ipu_distributions(graphcore_pod):
    train = TrainConfig(batch_size=64, seq_len=1024)
    model = decoder_block_probe(768, 12)
    rows = []
    for dist in IPU_DISTRIBUTIONS:
        run = graphcore_pod.run(graphcore_pod.compile(
            model, train, n_ipus=8, layers_per_ipu=dist))
        rows.append({"dist": dist, "max_load": max(dist),
                     "samples_per_s": run.samples_per_second})
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11a_wse_replicas(benchmark, cerebras):
    rows = benchmark.pedantic(measure_wse_replicas, args=(cerebras,),
                              rounds=1, iterations=1)
    print_comparison(
        "Fig. 11a: WSE throughput and comm share vs replicas (gpt2-tiny)",
        ["replicas", "tokens/s", "comm %"],
        [[r["replicas"], f"{r['tokens_per_s']:,.0f}",
          f"{100 * r['comm_fraction']:.3f}"] for r in rows])

    tokens = [r["tokens_per_s"] for r in rows]
    comm = [r["comm_fraction"] for r in rows]
    # Replication keeps improving throughput for this small model...
    assert tokens == sorted(tokens)
    # ...while communication overhead grows with the replica count,
    # starting from effectively zero at two replicas.
    assert comm[1] < 0.02
    assert comm[3] > comm[2] > comm[1] >= comm[0]


@pytest.mark.benchmark(group="fig11")
def test_fig11b_rdu_tp_utilization(benchmark, sambanova):
    rows = benchmark.pedantic(measure_rdu_tp, args=(sambanova,),
                              rounds=1, iterations=1)
    print_comparison(
        "Fig. 11b: RDU per-chip allocation vs TP (LLaMA-2 7B)",
        ["TP", "PCU %", "PMU %"],
        [[r["tp"], f"{r['pcu_pct']:.1f}", f"{r['pmu_pct']:.1f}"]
         for r in rows])

    by_tp = {r["tp"]: r for r in rows}
    # Cross-machine TP slashes per-chip PCU and PMU allocation
    # (paper: ~40% and ~25% reductions).
    assert by_tp[4]["pcu_pct"] < 0.7 * by_tp[2]["pcu_pct"]
    assert by_tp[4]["pmu_pct"] < 0.85 * by_tp[2]["pmu_pct"]
    assert by_tp[8]["pcu_pct"] <= by_tp[4]["pcu_pct"]


@pytest.mark.benchmark(group="fig11")
def test_fig11c_ipu_distributions(benchmark, graphcore_pod):
    rows = benchmark.pedantic(measure_ipu_distributions,
                              args=(graphcore_pod,), rounds=1, iterations=1)
    print_comparison(
        "Fig. 11c: IPU throughput under nine layer distributions "
        "(12 layers, 8 IPUs)",
        ["distribution", "max load", "samples/s"],
        [[str(r["dist"]), r["max_load"], f"{r['samples_per_s']:.1f}"]
         for r in rows])

    # Throughput is ordered by the most heavily loaded IPU.
    best = {}
    for r in rows:
        best.setdefault(r["max_load"], []).append(r["samples_per_s"])
    loads = sorted(best)
    for light, heavy in zip(loads, loads[1:]):
        assert min(best[light]) > max(best[heavy])
