"""Fig. 7 — RDU resource allocation ratio across layers and hidden sizes.

Paper: overall RDU allocation never exceeds ~60%, O3 highest and O0
lowest; O0/O1 behave almost identically and decline mildly with layer
count while O3 rises and stabilizes; vs hidden size O0/O1 climb until
sharding and O3 oscillates around its plateau.
"""

import pytest

from repro import TrainConfig, allocation_ratio
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import (
    decoder_block_probe,
    paper_rdu_hidden_sweep_o0_o3,
    paper_rdu_hidden_sweep_o1,
)

from paper_data import print_comparison

TRAIN = TrainConfig(batch_size=16, seq_len=1024,
                    precision=PrecisionPolicy.pure(Precision.BF16))
LAYERS = [4, 8, 12, 16, 24, 32]


def measure_vs_layers(sambanova):
    # Full-vocab GPT-2: the LM-head shard sections are the
    # high-allocation fixed part whose fading time share produces the
    # paper's mild O0/O1 decline with layer count.
    from repro import gpt2_model
    base = gpt2_model("small")
    out = {}
    for mode in ("O0", "O1", "O3"):
        out[mode] = [100.0 * allocation_ratio(
            sambanova.compile(base.with_layers(n), TRAIN, mode=mode))
            for n in LAYERS]
    return out


def measure_vs_hidden(sambanova):
    out = {"O0": [], "O3": [], "O1": []}
    for model in paper_rdu_hidden_sweep_o0_o3(n_layers=8):
        for mode in ("O0", "O3"):
            out[mode].append(100.0 * allocation_ratio(
                sambanova.compile(model, TRAIN, mode=mode)))
    o1_train = TrainConfig(batch_size=8, seq_len=2048,
                           precision=PrecisionPolicy.pure(Precision.BF16))
    for model in paper_rdu_hidden_sweep_o1(n_layers=4):
        out["O1"].append(100.0 * allocation_ratio(
            sambanova.compile(model, o1_train, mode="O1")))
    return out


@pytest.mark.benchmark(group="fig7")
def test_fig7a_allocation_vs_layers(benchmark, sambanova):
    curves = benchmark.pedantic(measure_vs_layers, args=(sambanova,),
                                rounds=1, iterations=1)
    print_comparison(
        "Fig. 7a: RDU allocation (%) vs layers (HS=768 blocks)",
        ["mode"] + [f"L{n}" for n in LAYERS],
        [[mode] + [f"{v:.1f}" for v in curve]
         for mode, curve in curves.items()])

    # Never exceeds ~60%; O3 > O1 > O0 at every point.
    for mode, curve in curves.items():
        assert all(v < 62.0 for v in curve), mode
    for o0, o1, o3 in zip(curves["O0"], curves["O1"], curves["O3"]):
        assert o3 > o1 > o0
    # O3 rises with layers then stabilizes; O0/O1 decline mildly.
    o3 = curves["O3"]
    assert o3[1] > o3[0]
    assert abs(o3[-1] - o3[-2]) < 3.0
    assert curves["O0"][-1] < curves["O0"][0]
    assert curves["O1"][-1] < curves["O1"][0]


@pytest.mark.benchmark(group="fig7")
def test_fig7b_allocation_vs_hidden(benchmark, sambanova):
    curves = benchmark.pedantic(measure_vs_hidden, args=(sambanova,),
                                rounds=1, iterations=1)
    print_comparison(
        "Fig. 7b: RDU allocation (%) vs hidden size",
        ["mode", "points"],
        [[mode, "  ".join(f"{v:.1f}" for v in curve)]
         for mode, curve in curves.items()])

    # O0 allocation climbs with hidden size (bigger matmuls per op).
    assert curves["O0"] == sorted(curves["O0"])
    # O1's large-hidden curve stays in a plateau band. (Deviation noted
    # in EXPERIMENTS.md: the paper sees a drop once sharding kicks in,
    # ours keeps climbing a few points.)
    for value in curves["O1"]:
        assert 40.0 < value < 70.0
    # O3 oscillates around a stable plateau rather than climbing.
    o3 = curves["O3"]
    assert max(o3) - min(o3) < 12.0
