"""Process vs thread dispatch on a CPU-bound grid.

The tentpole claim, measured: on a grid of GIL-bound cells (pure-Python
burns via :class:`~repro.workloads.reference.CpuBoundBackend`), a
4-worker process pool finishes at least 1.5x faster than a 4-worker
thread pool, because threads serialize on the GIL while processes
genuinely overlap. Both runs must produce equal cell reports —
parallelism never changes results.

The speedup assertion needs real cores; it is skipped on machines with
fewer than four. The results-equality half runs everywhere.
"""

import os
import time

import pytest

from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import ExecutionPolicy
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import SweepSpec, run_grid

WORKERS = 4
MIN_SPEEDUP = 1.5
#: Heavy enough that the burn dominates pool startup by two orders of
#: magnitude on commodity cores (~0.5 s per cell).
SPINS_PER_LAYER = 150_000
LAYERS = (8, 8, 8, 8, 8, 8, 8, 8)


def grid():
    return [SweepSpec(f"c{i}-L{n}",
                      gpt2_model("mini").with_layers(n),
                      TrainConfig(batch_size=4, seq_len=64))
            for i, n in enumerate(LAYERS)]


def timed_run(dispatch, spins=SPINS_PER_LAYER, **policy_kwargs):
    backend = CpuBoundBackend(spins_per_layer=spins)
    policy = ExecutionPolicy(max_workers=WORKERS, dispatch=dispatch,
                             **policy_kwargs)
    start = time.perf_counter()
    cells = run_grid(backend, grid(), policy=policy)
    return time.perf_counter() - start, cells


def test_dispatch_modes_agree_on_results():
    _, threaded = timed_run("thread", spins=100)
    _, processed = timed_run("process", spins=100)
    assert [c.spec.label for c in threaded] == \
        [c.spec.label for c in processed]
    for a, b in zip(threaded, processed):
        assert a.compiled == b.compiled
        assert a.run.meta["checksum"] == b.run.meta["checksum"]


def test_supervision_overhead_is_bounded():
    # Every process-dispatched run is supervised; its steady-state
    # cost is one heartbeat stamp per interval per worker plus a
    # parent-side patrol between drain polls. Cranking the stamping
    # rate 100x above the default (0.05 s vs 5 s) must not move
    # wall-clock by more than 50% on the same CPU-bound grid — the
    # machinery has to stay noise next to the work.
    timed_run("process", spins=10)  # warm the fork machinery
    default_s, default_cells = timed_run("process", spins=30_000)
    hot_s, hot_cells = timed_run("process", spins=30_000,
                                 heartbeat_interval=0.05)
    print(f"\n  heartbeat 5.00 s: {default_s:6.2f} s")
    print(f"  heartbeat 0.05 s: {hot_s:6.2f} s"
          f"  ({hot_s / default_s:.2f}x)")
    assert hot_s <= default_s * 1.5
    for a, b in zip(default_cells, hot_cells):
        assert a.run.meta["checksum"] == b.run.meta["checksum"]


@pytest.mark.skipif((os.cpu_count() or 1) < WORKERS,
                    reason=f"speedup needs >= {WORKERS} cores")
def test_process_pool_beats_threads_on_cpu_bound_grid():
    # warm up the fork machinery so pool startup is out of the measure
    timed_run("process", spins=10)
    thread_s, _ = timed_run("thread")
    process_s, _ = timed_run("process")
    speedup = thread_s / process_s
    print(f"\n  thread  {WORKERS} workers: {thread_s:7.2f} s")
    print(f"  process {WORKERS} workers: {process_s:7.2f} s")
    print(f"  speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP
