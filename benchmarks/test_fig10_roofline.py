"""Fig. 10 — Roofline models across chips.

Paper: all WSE-2 workloads operate compute-bound thanks to the 20 PB/s
on-chip tier; all RDU and IPU workloads are memory-bound against their
DDR tiers. (Absolute Eq. 5 intensities differ from the paper's reported
8.9-42 range — see EXPERIMENTS.md — but the classification, the ridge
ordering, and the achieved-TFLOPs bands reproduce.)
"""

import pytest

from repro import (
    RooflineModel,
    Tier1Profiler,
    TrainConfig,
    gpt2_model,
)
from repro.models.precision import Precision, PrecisionPolicy

from paper_data import FIG10_BOUNDS, FIG10_IPU_TFLOPS, print_comparison

LAYERS = [4, 6, 8]


def measure_rooflines(cerebras, sambanova, graphcore):
    fp16 = TrainConfig(batch_size=32, seq_len=1024)
    bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
    base = gpt2_model("small")
    points = {"CS-2": [], "SN30": [], "Bow-2000": []}
    for layers in LAYERS:
        model = base.with_layers(layers)
        points["CS-2"].append(
            Tier1Profiler(cerebras).profile(model, fp16))
        points["SN30"].append(
            Tier1Profiler(sambanova).profile(model, bf16, mode="O3"))
        points["Bow-2000"].append(
            Tier1Profiler(graphcore).profile(model, fp16, n_ipus=2))
    return points


@pytest.mark.benchmark(group="fig10")
def test_fig10_roofline_classification(benchmark, cerebras, sambanova,
                                       graphcore):
    points = benchmark.pedantic(
        measure_rooflines, args=(cerebras, sambanova, graphcore),
        rounds=1, iterations=1)

    rows = []
    for platform, results in points.items():
        chip = results[0].compiled
        ridge = RooflineModel(
            {"CS-2": cerebras, "SN30": sambanova,
             "Bow-2000": graphcore}[platform].system.chip).ridge_intensity
        for result in results:
            rows.append([
                platform, result.model.n_layers,
                f"{result.intensity:.1f}", f"{ridge:.2f}",
                f"{result.achieved_flops / 1e12:.1f}",
                f"{result.roofline.attainable_flops / 1e12:.1f}",
                result.roofline.bound,
            ])
        del chip
    print_comparison(
        "Fig. 10: roofline placement per platform",
        ["platform", "layers", "AI (F/B)", "ridge", "achieved TF",
         "roof TF", "bound"], rows)

    # The paper's three-way classification.
    for platform, expected in FIG10_BOUNDS.items():
        for result in points[platform]:
            assert result.roofline.bound == expected, platform
    # No point exceeds its roof.
    for results in points.values():
        for result in results:
            assert result.achieved_flops <= result.roofline.attainable_flops
    # IPU band brackets the paper's 91-143 TFLOP/s.
    ipu_tf = [r.achieved_flops / 1e12 for r in points["Bow-2000"]]
    assert max(ipu_tf) > FIG10_IPU_TFLOPS[0]
    assert min(ipu_tf) < FIG10_IPU_TFLOPS[1] * 1.4
    # WSE-2 efficiency near the paper's ~20% of peak.
    wse_eff = [r.compute_efficiency for r in points["CS-2"]]
    assert 0.05 < max(wse_eff) < 0.35
