"""Table IV — mixed-precision throughput across platforms.

Paper: the RDU is the most precision-sensitive (+34.3% from full mixed
precision), the IPU next (+22.0%), and the WSE least (+10.7% from FP16
to CB16).
"""

import pytest

from repro import DeploymentOptimizer, TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import TABLE4, print_comparison


def measure_precision(cerebras, sambanova, graphcore):
    wse = DeploymentOptimizer(cerebras).compare_precision(
        gpt2_model("small"), TrainConfig(batch_size=128, seq_len=1024),
        baseline=PrecisionPolicy.pure(Precision.FP16),
        optimized=PrecisionPolicy.pure(Precision.CB16))
    ipu = DeploymentOptimizer(graphcore).compare_precision(
        decoder_block_probe(768, 4, vocab_size=50257),
        TrainConfig(batch_size=16, seq_len=1024),
        baseline=PrecisionPolicy.full(),
        optimized=PrecisionPolicy.mixed(Precision.FP16),
        n_ipus=2)
    rdu = DeploymentOptimizer(sambanova).compare_precision(
        llama2_model("7b"),
        TrainConfig(batch_size=16, seq_len=4096,
                    precision=PrecisionPolicy.pure(Precision.BF16)),
        baseline=PrecisionPolicy.matmul_only(Precision.BF16),
        optimized=PrecisionPolicy.mixed(Precision.BF16),
        mode="O1", tp=2)
    return {"WSE": wse, "IPU": ipu, "RDU": rdu}


@pytest.mark.benchmark(group="table4")
def test_table4_precision(benchmark, cerebras, sambanova, graphcore):
    results = benchmark.pedantic(
        measure_precision, args=(cerebras, sambanova, graphcore),
        rounds=1, iterations=1)

    print_comparison(
        "Table IV: precision gains (paper gain in parentheses)",
        ["platform", "baseline", "optimized", "gain", "paper"],
        [[name,
          f"{cmp.baseline_tokens_per_second:,.0f} ({cmp.baseline_label})",
          f"{cmp.optimized_tokens_per_second:,.0f} "
          f"({cmp.optimized_label})",
          f"{cmp.gain:+.1%}", f"+{TABLE4[name][2]:.1%}"]
         for name, cmp in results.items()])

    # The paper's sensitivity ordering: RDU > IPU > WSE.
    assert results["RDU"].gain > results["IPU"].gain > results["WSE"].gain
    # Per-platform bands around the paper's values.
    assert results["WSE"].gain == pytest.approx(0.107, abs=0.04)
    assert results["IPU"].gain == pytest.approx(0.22, abs=0.08)
    assert results["RDU"].gain == pytest.approx(0.343, abs=0.10)
