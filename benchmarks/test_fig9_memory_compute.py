"""Fig. 9 — Memory utilization and compute performance across chips.

(a) WSE: configuration memory grows sharply past 36 layers, TFLOPs peak
    at 18-36 layers then collapse.
(b/c) RDU: O0 severely limited; O1/O3 TFLOPs grow with layers and hidden
    size with slowing gains.
(d) IPU: TFLOPs plateau around 4 layers; memory grows linearly; the run
    fails at 10 layers.
"""

import pytest

from repro import TrainConfig, gpt2_model, llama2_model
from repro.common.errors import CompilationError
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

from paper_data import (
    FIG9A_PEAK_LAYERS,
    FIG9D_FAIL_LAYERS,
    FIG10_RDU_TFLOPS,
    fmt,
    print_comparison,
)

WSE_LAYERS = [6, 12, 18, 24, 30, 36, 48, 60, 72]
RDU_LAYERS = [4, 8, 16, 32]
RDU_HIDDENS = [3072, 4096, 5120, 8192]
IPU_LAYERS = [1, 2, 4, 6, 8, 9, 10]


def measure_wse(cerebras):
    train = TrainConfig(batch_size=256, seq_len=1024)
    model = gpt2_model("small")
    rows = []
    for layers in WSE_LAYERS:
        report = cerebras.compile(model.with_layers(layers), train)
        run = cerebras.run(report)
        memory = report.shared_memory
        rows.append({
            "layers": layers,
            "config_pct": 100 * memory.configuration_bytes
            / memory.capacity_bytes,
            "training_pct": 100 * memory.training_bytes
            / memory.capacity_bytes,
            "tflops": run.achieved_flops / 1e12,
        })
    return rows


def measure_rdu(sambanova):
    train = TrainConfig(batch_size=16, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    by_layers = {mode: [sambanova.run(sambanova.compile(
        decoder_block_probe(768, n), train, mode=mode)).achieved_flops / 1e12
        for n in RDU_LAYERS] for mode in ("O0", "O1", "O3")}
    o1_train = TrainConfig(batch_size=32, seq_len=2048,
                           precision=PrecisionPolicy.pure(Precision.BF16))
    base = llama2_model("7b")
    by_hidden = [sambanova.run(sambanova.compile(
        base.with_hidden(h).with_layers(4), o1_train,
        mode="O1")).achieved_flops / 1e12 for h in RDU_HIDDENS]
    return by_layers, by_hidden


def measure_ipu(graphcore):
    train = TrainConfig(batch_size=32, seq_len=1024)
    model = gpt2_model("small")
    rows = []
    for layers in IPU_LAYERS:
        try:
            report = graphcore.compile(model.with_layers(layers), train,
                                       n_ipus=2)
            run = graphcore.run(report)
        except CompilationError:
            rows.append({"layers": layers, "memory_mb": None,
                         "tflops": None})
        else:
            rows.append({
                "layers": layers,
                "memory_mb": report.shared_memory.total_bytes / 1e6,
                "tflops": run.achieved_flops / 1e12,
            })
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9a_wse_memory_and_tflops(benchmark, cerebras):
    rows = benchmark.pedantic(measure_wse, args=(cerebras,),
                              rounds=1, iterations=1)
    print_comparison(
        "Fig. 9a: WSE memory breakdown and TFLOPs vs layers",
        ["layers", "config %", "training %", "TFLOP/s"],
        [[r["layers"], f"{r['config_pct']:.1f}", f"{r['training_pct']:.1f}",
          f"{r['tflops']:.1f}"] for r in rows])

    tflops = {r["layers"]: r["tflops"] for r in rows}
    config = {r["layers"]: r["config_pct"] for r in rows}
    # TFLOPs peak inside the paper's 18-36 window, then collapse.
    peak_layer = max(tflops, key=tflops.get)
    assert FIG9A_PEAK_LAYERS[0] <= peak_layer <= 36
    assert tflops[72] < 0.3 * tflops[peak_layer]
    # Configuration memory growth is sharply superlinear past 36 layers.
    assert config[72] / config[36] > (72 / 36) * 1.5


@pytest.mark.benchmark(group="fig9")
def test_fig9bc_rdu_tflops(benchmark, sambanova):
    by_layers, by_hidden = benchmark.pedantic(
        measure_rdu, args=(sambanova,), rounds=1, iterations=1)
    print_comparison(
        "Fig. 9b: RDU TFLOPs vs layers (HS=768 blocks)",
        ["mode"] + [f"L{n}" for n in RDU_LAYERS],
        [[mode] + [f"{v:.1f}" for v in curve]
         for mode, curve in by_layers.items()])
    print_comparison(
        "Fig. 9c: RDU O1 TFLOPs vs hidden (paper range "
        f"{FIG10_RDU_TFLOPS[0]}-{FIG10_RDU_TFLOPS[1]})",
        [f"H{h}" for h in RDU_HIDDENS],
        [[f"{v:.1f}" for v in by_hidden]])

    # O0 severely limited.
    assert max(by_layers["O0"]) < 0.4 * max(by_layers["O3"])
    # O1/O3 grow with layers, gains slowing.
    for mode in ("O1", "O3"):
        curve = by_layers[mode]
        assert curve == sorted(curve)
        assert curve[-1] / curve[-2] < curve[1] / curve[0]
    # Hidden-size growth spans the paper's 35-50 TFLOP band shape.
    assert by_hidden == sorted(by_hidden)
    assert 0.5 * FIG10_RDU_TFLOPS[0] < by_hidden[0]
    assert by_hidden[-1] < 1.6 * FIG10_RDU_TFLOPS[1]


@pytest.mark.benchmark(group="fig9")
def test_fig9d_ipu_memory_and_tflops(benchmark, graphcore):
    rows = benchmark.pedantic(measure_ipu, args=(graphcore,),
                              rounds=1, iterations=1)
    print_comparison(
        "Fig. 9d: IPU memory and TFLOPs vs layers",
        ["layers", "memory (MB)", "TFLOP/s"],
        [[r["layers"], fmt(r["memory_mb"], ".0f"), fmt(r["tflops"], ".1f")]
         for r in rows])

    # Fails exactly at the paper's 10-layer point.
    by_layer = {r["layers"]: r for r in rows}
    assert by_layer[FIG9D_FAIL_LAYERS]["tflops"] is None
    assert by_layer[9]["tflops"] is not None
    # TFLOPs plateau near 4 layers (rise before, flat-to-down after).
    assert by_layer[4]["tflops"] > 1.2 * by_layer[1]["tflops"]
    assert abs(by_layer[8]["tflops"]
               - by_layer[4]["tflops"]) < 0.3 * by_layer[4]["tflops"]
    # Memory grows linearly once the decoder stage dominates (slopes are
    # per added layer because the sweep axis is non-uniform).
    series = [(r["layers"], r["memory_mb"]) for r in rows
              if r["memory_mb"] is not None and r["layers"] >= 2]
    slopes = [(m1 - m0) / (l1 - l0)
              for (l0, m0), (l1, m1) in zip(series, series[1:])]
    assert max(slopes) / min(slopes) < 1.2
