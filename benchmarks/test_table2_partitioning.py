"""Table II — O3 layer partitioning and O1 matrix sharding.

Paper (a): O3 needs more sections per decoder for backward than forward
(ratios 1.83-3 vs 0.66-1), and the forward ratio grows toward 1 as
hidden size increases. Paper (b): the O1 LM head shards at hidden sizes
3072-8192, with per-section PCU/PMU tracking shard geometry rather than
hidden size.
"""

import pytest

from repro import TrainConfig
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe, paper_rdu_hidden_sweep_o1

from paper_data import TABLE2A, TABLE2B, print_comparison

TRAIN = TrainConfig(batch_size=16, seq_len=1024,
                    precision=PrecisionPolicy.pure(Precision.BF16))


def measure_o3_partitioning(sambanova):
    rows = {}
    for hidden in TABLE2A:
        model = decoder_block_probe(hidden, 8)
        report = sambanova.compile(model, TRAIN, mode="O3")
        rows[hidden] = sambanova.compiler.partition_summary(report)
    return rows


def measure_o1_sharding(sambanova):
    o1_train = TrainConfig(batch_size=8, seq_len=2048,
                           precision=PrecisionPolicy.pure(Precision.BF16))
    rows = {}
    for model in paper_rdu_hidden_sweep_o1(n_layers=4):
        report = sambanova.compile(model, o1_train, mode="O1")
        shard_phases = [p for p in report.phases
                        if "lm_head" in p.name and ".S" in p.name
                        and ".bwd" not in p.name]
        shards = sum(t.meta.get("shards", 1)
                     for p in shard_phases for t in p.tasks)
        pcus = [p.compute_units for p in shard_phases]
        pmus = [p.memory_units for p in shard_phases]
        rows[model.hidden_size] = {
            "shards": shards,
            "sections": len(shard_phases),
            "pcu_per_section": max(pcus) if pcus else 0.0,
            "pmu_per_section": max(pmus) if pmus else 0.0,
        }
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2a_o3_partitioning(benchmark, sambanova):
    rows = benchmark.pedantic(measure_o3_partitioning, args=(sambanova,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table II(a): O3 sections per decoder (paper fwd/bwd ratio in "
        "parentheses)",
        ["HS", "fwd ratio", "bwd ratio"],
        [[hs,
          f"{rows[hs]['forward_ratio']:.2f} ({TABLE2A[hs][1]})",
          f"{rows[hs]['backward_ratio']:.2f} ({TABLE2A[hs][3]})"]
         for hs in sorted(rows)])

    for hs, summary in rows.items():
        # Backward needs more sections per decoder than forward.
        assert summary["backward_ratio"] > summary["forward_ratio"]
    # Forward ratio grows (or holds) as hidden size increases.
    fwd = [rows[hs]["forward_ratio"] for hs in sorted(rows)]
    assert fwd[-1] >= fwd[0]


@pytest.mark.benchmark(group="table2")
def test_table2b_o1_sharding(benchmark, sambanova):
    rows = benchmark.pedantic(measure_o1_sharding, args=(sambanova,),
                              rounds=1, iterations=1)
    print_comparison(
        "Table II(b): O1 LM-head sharding (paper values in parentheses)",
        ["HS", "shards", "sections", "PCU/sec", "PMU/sec"],
        [[hs,
          f"{rows[hs]['shards']} ({TABLE2B[hs][0]})",
          f"{rows[hs]['sections']} ({TABLE2B[hs][1]})",
          f"{rows[hs]['pcu_per_section']:.0f} ({TABLE2B[hs][3]})",
          f"{rows[hs]['pmu_per_section']:.0f} ({TABLE2B[hs][2]})"]
         for hs in sorted(rows)])

    shard_counts = [rows[hs]["shards"] for hs in sorted(rows)]
    # Every tested hidden size shards, and counts grow with size.
    assert all(s > 1 for s in shard_counts)
    assert shard_counts == sorted(shard_counts)
    # Per-section PCU count is set by shard geometry, not hidden size:
    # the spread across a 2.7x hidden range stays narrow.
    pcu = [rows[hs]["pcu_per_section"] for hs in sorted(rows)]
    assert max(pcu) / min(pcu) < 1.5
