"""Table I — WSE-2 PE allocation ratio across layer configurations.

Paper: allocation climbs 33% -> 60% -> ~85% and saturates at 92-93% from
36 layers on; an HS-768 GPT-2 stops compiling at 78 layers.
"""

import pytest

from repro import TrainConfig, allocation_ratio, gpt2_model
from repro.common.errors import CompilationError

from paper_data import TABLE1_LAYERS, TABLE1_PE_PERCENT, fmt, print_comparison

TRAIN = TrainConfig(batch_size=64, seq_len=1024)


def measure_allocation(cerebras):
    model = gpt2_model("small")
    measured = []
    for layers in TABLE1_LAYERS:
        try:
            report = cerebras.compile(model.with_layers(layers), TRAIN)
        except CompilationError:
            measured.append(None)
        else:
            measured.append(100.0 * allocation_ratio(report))
    return measured


@pytest.mark.benchmark(group="table1")
def test_table1_pe_allocation(benchmark, cerebras):
    measured = benchmark.pedantic(
        measure_allocation, args=(cerebras,), rounds=1, iterations=1)

    rows = [["paper Pe(%)"] + [fmt(v, ".0f") for v in TABLE1_PE_PERCENT],
            ["measured"] + [fmt(v, ".1f") for v in measured]]
    print_comparison("Table I: PE allocation vs layers (HS=768)",
                     ["series"] + [f"L{n}" for n in TABLE1_LAYERS], rows)

    # Shape assertions (who saturates where, and the failure point).
    assert measured[-1] is None, "78 layers must fail to compile"
    assert all(v is not None for v in measured[:-1])
    assert measured[0] == pytest.approx(33.0, abs=3.0)
    assert measured[1] == pytest.approx(60.0, abs=4.0)
    for value in measured[4:-1]:
        assert 88.0 <= value <= 94.0
    assert measured[:5] == sorted(measured[:5])
