"""Shared fixtures for the benchmark harness.

Every module regenerates one table or figure from the paper's evaluation
(Sections V and VI), printing the measured series next to the paper's
published values. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro import (
    CerebrasBackend,
    GPUBackend,
    GraphcoreBackend,
    SambaNovaBackend,
)
from repro.hardware.specs import BOW_POD


@pytest.fixture(scope="session")
def cerebras() -> CerebrasBackend:
    return CerebrasBackend()


@pytest.fixture(scope="session")
def sambanova() -> SambaNovaBackend:
    return SambaNovaBackend()


@pytest.fixture(scope="session")
def graphcore() -> GraphcoreBackend:
    return GraphcoreBackend()


@pytest.fixture(scope="session")
def graphcore_pod() -> GraphcoreBackend:
    return GraphcoreBackend(BOW_POD)


@pytest.fixture(scope="session")
def gpu() -> GPUBackend:
    return GPUBackend()
