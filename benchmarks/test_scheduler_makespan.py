"""Scheduler makespan benchmark on an unbalanced lane grid.

The tentpole claim, measured: on a grid of 8 two-second cells plus one
24-second straggler, ``longest-first`` dispatch cuts the simulated
2-worker makespan from 32 s to 24 s (25%) versus ``lane-major``, while
producing identical spec-ordered results. Cell durations are injected
on a fake clock, so the numbers are exact and deterministic; the
benchmark half tracks the scheduler's own dispatch overhead.
"""

import pytest

from repro import TrainConfig, gpt2_model
from repro.campaign import (
    AnalyticCostPredictor,
    Campaign,
    CampaignLane,
    Scheduler,
    simulate_makespan,
)
from repro.campaign.engine import CellTask
from repro.resilience import (
    ExecutionPolicy,
    FakeClock,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
)
from repro.workloads.sweeps import SweepSpec

SHORT_LAYERS = tuple(range(2, 10))
LONG_LAYERS = 40
SHORT_SECONDS, LONG_SECONDS = 2.0, 24.0


def unbalanced_lane(backend):
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    specs = [SweepSpec(label=f"L{n}", model=model.with_layers(n),
                       train=train)
             for n in (*SHORT_LAYERS, LONG_LAYERS)]
    clock = FakeClock()
    plan = FaultPlan()
    for n in SHORT_LAYERS:
        plan.add(FaultSpec.hang(SHORT_SECONDS, match=f"/L{n}/",
                                phase="compile"))
    plan.add(FaultSpec.hang(LONG_SECONDS, match=f"/L{LONG_LAYERS}/",
                            phase="compile"))
    wrapped = FaultInjectingBackend(backend, plan, clock=clock)
    return CampaignLane(backend=wrapped, specs=specs, clock=clock)


def makespan_for(backend, schedule, workers=2):
    """Measure each cell on a fake clock, simulate the worker pool."""
    order = []
    Campaign(
        [unbalanced_lane(backend)],
        ExecutionPolicy(schedule=schedule, predictor="analytic"),
    ).run(on_cell=lambda label, cell: order.append(cell.spec.label))
    costs = {f"L{n}": SHORT_SECONDS for n in SHORT_LAYERS}
    costs[f"L{LONG_LAYERS}"] = LONG_SECONDS
    return simulate_makespan([costs[label] for label in order], workers)


@pytest.mark.benchmark(group="scheduler")
def test_longest_first_makespan_reduction(benchmark, cerebras):
    """The acceptance numbers: 32 s lane-major, 24 s longest-first."""
    baseline = makespan_for(cerebras, "lane-major")
    improved = benchmark(makespan_for, cerebras, "longest-first")
    assert baseline == 32.0
    assert improved == 24.0
    reduction = 1.0 - improved / baseline
    assert reduction >= 0.20


@pytest.mark.benchmark(group="scheduler")
def test_dispatch_overhead(benchmark):
    """Raw pick/observe cost on a 500-cell pending list."""

    def drain(n: int = 500) -> int:
        scheduler = Scheduler("longest-first", AnalyticCostPredictor())
        pending = list(enumerate(
            CellTask(key=f"c{i}", compile_fn=lambda: None,
                     cost_hint=float(i % 17))
            for i in range(n)))
        picks = 0
        while pending:
            _, chosen = pending.pop(scheduler.pick(pending))
            scheduler.observe(chosen, chosen.cost_hint)
            picks += 1
        return picks

    assert benchmark(drain) == 500
