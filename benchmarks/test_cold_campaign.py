"""Cold-campaign acceptance: staged compile memoization, measured.

The tentpole claim: on the reference grid — one model family at a
fixed layer count swept across batch sizes — stage memoization cuts a
*cold* campaign's wall time by at least 2x, because every cell after
the first reuses the layer-proportional graph burn instead of
recomputing it (:meth:`~repro.workloads.reference.CpuBoundBackend
.compile_stages` keys that stage on ``n_layers`` alone).

And the sharing must be invisible in the results: the merged journal,
the report, and the canonical merged trace are byte-identical with the
memo on or off, under thread *and* process dispatch. Only the
Observability rollup may differ — its ``stage hits`` / ``stage
misses`` columns exist precisely to report the sharing.
"""

import time

import pytest

from repro.cache import CompileCache
from repro.campaign import Campaign
from repro.core.serialize import campaign_to_dict
from repro.models.config import TrainConfig, gpt2_model
from repro.observe import load_events, merged_trace_text
from repro.resilience import ExecutionPolicy, ShardedJournal
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import SweepSpec

MIN_SPEEDUP = 2.0
#: Heavy enough that the burn dominates harness overhead (~0.1 s per
#: cold compile on commodity cores).
SPINS_PER_LAYER = 60_000
LAYERS = 6
BATCHES = (4, 8, 12, 16, 20, 24, 28, 32)


def grid():
    return [SweepSpec(f"b{b}", gpt2_model("mini").with_layers(LAYERS),
                      TrainConfig(batch_size=b, seq_len=64))
            for b in BATCHES]


def timed_campaign(stage_memo, spins=SPINS_PER_LAYER, **policy_kwargs):
    backend = CpuBoundBackend(spins_per_layer=spins)
    policy = ExecutionPolicy(stage_memo=stage_memo, **policy_kwargs)
    start = time.perf_counter()
    result = Campaign([(backend, grid())], policy, measure=False).run()
    elapsed = time.perf_counter() - start
    label = result.labels[0]
    assert all(not c.failed for c in result.cells[label])
    return elapsed, result


def stable_report(result):
    """The report minus the blocks allowed to differ.

    Scheduling carries measured wall-clock; Supervision's heartbeat
    adapts to ledger history; Observability intentionally reports the
    memo's stage hit/miss counters. Everything else — the grid tables,
    infrastructure health, insights — must match byte for byte.
    """
    blocks = result.report().render().split("\n\n")
    return "\n\n".join(
        b for b in blocks
        if not b.startswith(("Scheduling", "Supervision",
                             "Observability")))


def test_stage_memo_speeds_up_cold_campaign():
    # Same grid, same backend, sequential thread dispatch — the only
    # variable is the memo. Interleave a throwaway warm-up so both
    # measured runs see equally warm interpreter state.
    timed_campaign(True, spins=10)
    cold_s, cold = timed_campaign(False)
    memo_s, memo = timed_campaign(True)
    speedup = cold_s / memo_s
    print(f"\n  memo off: {cold_s:6.2f} s")
    print(f"  memo on:  {memo_s:6.2f} s")
    print(f"  speedup:  {speedup:.2f}x (floor {MIN_SPEEDUP}x)")
    label = cold.labels[0]
    for a, b in zip(cold.cells[label], memo.cells[label]):
        assert a.compiled == b.compiled
    assert speedup >= MIN_SPEEDUP


@pytest.mark.parametrize("dispatch", ["thread", "process"])
def test_memo_is_invisible_in_results(tmp_path, dispatch):
    def run(tag, stage_memo):
        return timed_campaign(
            stage_memo, spins=200, dispatch=dispatch, max_workers=2,
            journal=ShardedJournal(tmp_path / tag),
            trace=str(tmp_path / f"{tag}-trace"))[1]

    plain = run("off", False)
    memoized = run("on", True)
    assert (ShardedJournal(tmp_path / "off").merged_text()
            == ShardedJournal(tmp_path / "on").merged_text())
    assert stable_report(plain) == stable_report(memoized)
    # The canonical merged trace excludes stage_cache telemetry, so it
    # too is byte-identical with the memo on or off.
    assert (merged_trace_text(load_events(tmp_path / "off-trace"))
            == merged_trace_text(load_events(tmp_path / "on-trace")))


def test_stage_hits_surface_in_table_and_json(tmp_path):
    # Sequential, so the split is exact: the first cell misses both
    # stages; every later cell hits the shared graph stage and misses
    # its own report stage.
    _, result = timed_campaign(
        True, spins=100, journal=ShardedJournal(tmp_path / "j"),
        trace=str(tmp_path / "trace"))
    row = result.observability[0]
    assert row.stage_hits == len(BATCHES) - 1
    assert row.stage_misses == len(BATCHES) + 1
    rendered = result.report().render()
    assert "stage hits" in rendered
    payload = campaign_to_dict(result)
    assert payload["observability"][0]["stage_hits"] == len(BATCHES) - 1
    assert payload["observability"][0]["stage_misses"] == len(BATCHES) + 1

    _, plain = timed_campaign(
        False, spins=100, journal=ShardedJournal(tmp_path / "j2"),
        trace=str(tmp_path / "trace2"))
    row = plain.observability[0]
    assert (row.stage_hits, row.stage_misses) == (0, 0)


def test_stage_spill_is_shared_across_processes(tmp_path):
    # With a cache directory, worker processes publish stage artifacts
    # into its stage tier: the grid's single graph fingerprint ends up
    # stored exactly once, however many workers compiled cells.
    timed_campaign(True, spins=100, dispatch="process", max_workers=2,
                   journal=ShardedJournal(tmp_path / "j"),
                   cache=tmp_path / "cache")
    cache = CompileCache(tmp_path / "cache")
    stage_entries = cache.stage_entries()
    assert len(stage_entries["graph"]) == 1
    assert len(stage_entries["report"]) == len(BATCHES)
    # The stage tier is invisible to whole-cell entry accounting.
    assert len(cache) == len(BATCHES)
