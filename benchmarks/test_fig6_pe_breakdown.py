"""Fig. 6 — WSE-2 computation vs transmission PEs, per-kernel usage.

Paper: computation and transmission PEs follow similar trends in close
proportion; per-attention-kernel PE usage is stable below 12 layers
(kernels sit at their scalability caps) and shrinks as the model grows
(elastic adaptation).
"""

import pytest

from repro import TrainConfig, gpt2_model

from paper_data import print_comparison

TRAIN = TrainConfig(batch_size=64, seq_len=1024)
LAYERS = [1, 6, 12, 18, 24, 36, 48]


def measure_breakdown(cerebras):
    model = gpt2_model("small")
    series = []
    for layers in LAYERS:
        report = cerebras.compile(model.with_layers(layers), TRAIN)
        tasks = report.phases[0].tasks
        compute = sum(t.compute_units for t in tasks if t.role == "compute")
        trans = sum(t.compute_units for t in tasks
                    if t.role == "transmission")
        attn = [t.compute_units for t in tasks
                if t.role == "compute" and t.meta.get("kind") == "attention"]
        series.append({
            "layers": layers,
            "compute_pes": compute,
            "transmission_pes": trans,
            "attn_kernel_pes": attn[0],
        })
    return series


@pytest.mark.benchmark(group="fig6")
def test_fig6_pe_breakdown(benchmark, cerebras):
    series = benchmark.pedantic(measure_breakdown, args=(cerebras,),
                                rounds=1, iterations=1)

    print_comparison(
        "Fig. 6: PE breakdown vs layers (HS=768)",
        ["layers", "compute PEs", "transmission PEs", "PEs/attn kernel"],
        [[s["layers"], f"{s['compute_pes']:.0f}",
          f"{s['transmission_pes']:.0f}", f"{s['attn_kernel_pes']:.0f}"]
         for s in series])

    # Computation and transmission track each other in close proportion.
    for s in series:
        ratio = s["transmission_pes"] / s["compute_pes"]
        assert ratio == pytest.approx(ratio, abs=0.0)  # definitional
        assert 0.5 < ratio < 0.8

    # Below 12 layers the attention kernel sits at its cap (stable).
    assert series[0]["attn_kernel_pes"] == pytest.approx(
        series[1]["attn_kernel_pes"], rel=0.05)
    # Beyond saturation it shrinks with model size.
    attn = [s["attn_kernel_pes"] for s in series]
    assert attn[-1] < attn[-2] < attn[3]
    # Both pools grow with the model until the wafer saturates.
    totals = [s["compute_pes"] + s["transmission_pes"] for s in series[:4]]
    assert totals == sorted(totals)
