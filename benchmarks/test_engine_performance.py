"""Simulator-performance benchmarks (not a paper figure).

Guards the framework's own speed: the discrete-event engine and the
end-to-end compile+run paths must stay fast enough that full paper
sweeps run in seconds. pytest-benchmark tracks regressions.
"""

import pytest

from repro import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.sim.engine import Resource, Simulator


@pytest.mark.benchmark(group="engine")
def test_engine_event_throughput(benchmark):
    """Raw DES event dispatch rate."""

    def run_events(n: int = 50_000) -> int:
        sim = Simulator()

        def tick(remaining: int) -> None:
            if remaining > 0:
                sim.schedule(1.0, tick, remaining - 1)

        sim.schedule(0.0, tick, n)
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 50_001


@pytest.mark.benchmark(group="engine")
def test_engine_contended_resource(benchmark):
    """Resource queueing under heavy contention."""

    def run_contended(jobs: int = 5_000) -> float:
        sim = Simulator()
        res = Resource(sim, capacity=4)

        def work() -> None:
            sim.schedule(1.0, res.release)

        for _ in range(jobs):
            res.request(work)
        return sim.run()

    makespan = benchmark(run_contended)
    assert makespan == pytest.approx(5_000 / 4)


@pytest.mark.benchmark(group="engine")
def test_wse_compile_run_latency(benchmark, cerebras):
    """One full compile+run on the heaviest backend."""
    model = gpt2_model("small").with_layers(24)
    train = TrainConfig(batch_size=64, seq_len=1024)

    def compile_and_run():
        return cerebras.run(cerebras.compile(model, train))

    run = benchmark(compile_and_run)
    assert run.tokens_per_second > 0


@pytest.mark.benchmark(group="engine")
def test_rdu_o3_compile_latency(benchmark, sambanova):
    """Full-graph sectioning of a deep model."""
    model = gpt2_model("small").with_layers(48)
    train = TrainConfig(batch_size=16, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16))

    def compile_only():
        return sambanova.compile(model, train, mode="O3")

    report = benchmark(compile_only)
    assert len(report.phases) > 48
